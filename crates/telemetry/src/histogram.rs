//! Fixed log₂-scale histograms with lock-free recording.
//!
//! Values are bucketed by the floor of their base-2 logarithm over the range
//! `[2^MIN_EXP, 2^MAX_EXP)`, with dedicated underflow and overflow buckets.
//! The range covers 15 nanoseconds to ~8.5 years when values are seconds,
//! and 1 to 2.7·10⁸ when values are counts, so one layout serves both.

use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Smallest finite bucket edge exponent: bucket 1 starts at `2^MIN_EXP`.
const MIN_EXP: i32 = -26;
/// One past the largest finite bucket edge exponent.
const MAX_EXP: i32 = 28;
/// Total bucket count: underflow + one per exponent + overflow.
pub const BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize + 2;

/// Map a value to its bucket index. Non-positive and NaN values land in the
/// underflow bucket; values at or above `2^MAX_EXP` in the overflow bucket.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < f64::powi(2.0, MIN_EXP) {
        return 0; // underflow (also catches NaN and negatives)
    }
    let exp = v.log2().floor() as i32;
    if exp >= MAX_EXP {
        BUCKETS - 1
    } else {
        (exp - MIN_EXP) as usize + 1
    }
}

/// The inclusive lower edge of bucket `i` (0 for the underflow bucket).
fn bucket_lower_edge(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        f64::powi(2.0, MIN_EXP + (i as i32 - 1))
    }
}

/// Atomically add `v` to an `AtomicU64` holding `f64` bits.
fn atomic_add_f64(cell: &AtomicU64, v: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + v).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// A lock-free histogram with fixed log₂-scale buckets.
///
/// Recording is two relaxed atomic increments plus one CAS loop for the
/// running sum — safe to call from PF-AP worker threads concurrently.
///
/// Histograms created by the global registry remember their name and
/// forward every observation to the identically-named histogram of the
/// active request scope (see [`crate::scope`]).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    scope_name: Option<Box<str>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            scope_name: None,
        }
    }

    /// Create an empty histogram that forwards observations to the active
    /// request scope under `name`.
    pub(crate) fn named(name: &str) -> Self {
        Histogram { scope_name: Some(name.into()), ..Self::new() }
    }

    /// Record one observation. Non-finite values (`NaN`, `±∞`) are
    /// rejected entirely — counting them in `buckets`/`count` while
    /// skipping them in `sum` would silently skew the reported mean.
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_add_f64(&self.sum_bits, v);
        if let Some(name) = &self.scope_name {
            if let Some(scope) = crate::scope::current_scope() {
                // Scope registries are non-forwarding, so their histograms
                // carry no name and this cannot recurse.
                scope.histogram(name).record(v);
            }
        }
    }

    /// Record a duration, in seconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all (finite) observations recorded so far.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// A consistent-enough point-in-time copy. Buckets are read
    /// individually, so a snapshot taken during concurrent recording may be
    /// off by in-flight observations — never torn within one bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// An owned copy of a [`Histogram`]'s state: mergeable, diffable, and
/// JSON-exportable.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot { buckets: vec![0; BUCKETS], count: 0, sum: 0.0 }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merge another snapshot into this one (bucket-wise addition) — the
    /// operation that aggregates per-shard or per-run histograms.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
    }

    /// The observations recorded after `earlier` was taken, assuming
    /// `earlier` is an older snapshot of the same histogram.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| b.saturating_sub(earlier.buckets.get(i).copied().unwrap_or(0)))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: (self.sum - earlier.sum).max(0.0),
        }
    }

    /// Approximate quantile (`q` in `[0,1]`): the lower edge of the bucket
    /// holding the `q`-th observation. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(bucket_lower_edge(i));
            }
        }
        Some(bucket_lower_edge(self.buckets.len().saturating_sub(1)))
    }

    /// JSON view: `{"count": n, "sum": s, "mean": m, "buckets": {edge: n}}`.
    /// Empty buckets are omitted so dumps stay small.
    pub fn to_value(&self) -> Value {
        let nonzero: Vec<(String, Value)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| **b > 0)
            .map(|(i, b)| (format!("{:e}", bucket_lower_edge(i)), Value::UInt(*b)))
            .collect();
        Value::Object(vec![
            ("count".to_string(), Value::UInt(self.count)),
            ("sum".to_string(), Value::Float(self.sum)),
            ("mean".to_string(), Value::Float(self.mean())),
            ("buckets".to_string(), Value::Object(nonzero)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        // Same power-of-two decade lands in the same bucket; the next
        // decade lands one bucket up.
        assert_eq!(bucket_index(1.0), bucket_index(1.5));
        assert_eq!(bucket_index(1.0) + 1, bucket_index(2.0));
        assert_eq!(bucket_index(2.0), bucket_index(3.99));
        assert_eq!(bucket_index(0.25) + 2, bucket_index(1.0));
    }

    #[test]
    fn underflow_and_overflow_buckets() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e-30), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);
        assert_eq!(bucket_index(1e30), BUCKETS - 1);
    }

    #[test]
    fn edges_are_inclusive_lower() {
        // A value exactly on a power of two belongs to the bucket it opens.
        let h = Histogram::new();
        h.record(4.0);
        h.record(4.0001);
        h.record(7.9999);
        let s = h.snapshot();
        assert_eq!(s.buckets[bucket_index(4.0)], 3);
    }

    #[test]
    fn count_sum_mean() {
        let h = Histogram::new();
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        h.record_duration(Duration::from_secs(2));
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert!((s.sum - 8.0).abs() < 1e-12);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_observations_are_rejected_everywhere() {
        let h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(1.0);
        let s = h.snapshot();
        // Rejected values appear in neither count, buckets, nor sum, so
        // the mean stays honest.
        assert_eq!(s.count, 1);
        assert_eq!(s.buckets.iter().sum::<u64>(), 1);
        assert!((s.sum - 1.0).abs() < 1e-12);
        assert!((s.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn finite_edge_cases_are_counted_consistently() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(f64::MIN_POSITIVE); // subnormal-scale: underflow bucket
        h.record(1e-310); // an actual subnormal
        h.record(1.0);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
        // Zero and subnormals land in the underflow bucket but still count.
        assert_eq!(s.buckets[0], 3);
        assert!((s.sum - (1.0 + f64::MIN_POSITIVE + 1e-310)).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(1.0);
        a.record(100.0);
        b.record(1.0);
        b.record(0.001);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 4);
        assert_eq!(m.buckets[bucket_index(1.0)], 2);
        assert_eq!(m.buckets[bucket_index(100.0)], 1);
        assert_eq!(m.buckets[bucket_index(0.001)], 1);
        assert!((m.sum - 102.001).abs() < 1e-9);
    }

    #[test]
    fn merge_is_commutative_on_snapshots() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [0.5, 8.0, 8.5] {
            a.record(v);
        }
        for v in [0.25, 8.1] {
            b.record(v);
        }
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        assert_eq!(ab.buckets, ba.buckets);
        assert_eq!(ab.count, ba.count);
    }

    #[test]
    fn delta_since_isolates_new_observations() {
        let h = Histogram::new();
        h.record(1.0);
        let before = h.snapshot();
        h.record(16.0);
        h.record(16.5);
        let d = h.snapshot().delta_since(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.buckets[bucket_index(1.0)], 0);
        assert_eq!(d.buckets[bucket_index(16.0)], 2);
        assert!((d.sum - 32.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_estimates_from_bucket_edges() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(1.0);
        }
        h.record(1024.0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(1024.0));
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), None);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record(1.0 + (i % 7) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread");
        }
        assert_eq!(h.count(), 4000);
        let total: u64 = h.snapshot().buckets.iter().sum();
        assert_eq!(total, 4000);
    }

    #[test]
    fn json_view_has_the_summary_fields() {
        let h = Histogram::new();
        h.record(2.0);
        let v = h.snapshot().to_value();
        assert_eq!(v.get("count").and_then(|c| c.as_u64()), Some(1));
        assert_eq!(v.get("sum").and_then(|s| s.as_f64()), Some(2.0));
        assert!(v.get("buckets").is_some());
    }
}
