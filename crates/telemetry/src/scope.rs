//! Per-request telemetry scopes.
//!
//! A *scope* is a private [`MetricsRegistry`] installed for the duration
//! of one logical request. While a scope is active on a thread, every
//! increment against a global-registry instrument is mirrored into the
//! identically-named instrument of the scope registry. A snapshot of the
//! scope registry is therefore an *exact* record of what the request did —
//! no bleed from other requests running concurrently, no matter how long
//! ago the global instrument handles were resolved and cached.
//!
//! Scopes are thread-local; fan-out code (e.g. the PF-AP worker pool)
//! captures [`current_scope`] before spawning and re-enters it on each
//! worker via [`enter_scope`].
//!
//! ```
//! use std::sync::Arc;
//! use udao_telemetry::{enter_scope, MetricsRegistry};
//!
//! let scope = Arc::new(MetricsRegistry::new());
//! {
//!     let _guard = enter_scope(Arc::clone(&scope));
//!     udao_telemetry::counter("scope_doc.example").inc();
//! }
//! assert_eq!(scope.snapshot().counter("scope_doc.example"), 1);
//! ```

use crate::registry::MetricsRegistry;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::Arc;

thread_local! {
    static CURRENT_SCOPE: RefCell<Option<Arc<MetricsRegistry>>> = const { RefCell::new(None) };
}

/// The scope registry active on this thread, if any.
pub fn current_scope() -> Option<Arc<MetricsRegistry>> {
    CURRENT_SCOPE.with(|s| s.borrow().clone())
}

/// Install `registry` as this thread's active scope until the returned
/// guard drops; the previous scope (if any) is restored then. Nested
/// scopes shadow outer ones — increments reach only the innermost.
///
/// # Panics
///
/// Panics if `registry` is forwarding (i.e. the global registry): a
/// forwarding scope would mirror increments back into itself forever.
pub fn enter_scope(registry: Arc<MetricsRegistry>) -> ScopeGuard {
    assert!(
        !registry.is_forwarding(),
        "a telemetry scope must be a plain MetricsRegistry::new(), not the global registry"
    );
    let prev = CURRENT_SCOPE.with(|s| s.borrow_mut().replace(registry));
    ScopeGuard { prev, _not_send: PhantomData }
}

/// RAII guard of [`enter_scope`]; restores the previously active scope on
/// drop. `!Send`, because the scope it manipulates is thread-local.
pub struct ScopeGuard {
    prev: Option<Arc<MetricsRegistry>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT_SCOPE.with(|s| *s.borrow_mut() = self.prev.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::global;

    #[test]
    fn scoped_increments_mirror_into_the_scope_registry() {
        let name = "scope_test.mirrored";
        let scope = Arc::new(MetricsRegistry::new());
        let before_global = global().counter(name).get();
        {
            let _guard = enter_scope(Arc::clone(&scope));
            global().counter(name).add(3);
            global().histogram("scope_test.mirrored_h").record(0.5);
        }
        // Outside the scope, increments no longer mirror.
        global().counter(name).inc();
        let s = scope.snapshot();
        assert_eq!(s.counter(name), 3);
        assert_eq!(s.histogram("scope_test.mirrored_h").map(|h| h.count), Some(1));
        // The global registry still saw everything.
        assert_eq!(global().counter(name).get() - before_global, 4);
    }

    #[test]
    fn cached_handles_forward_at_increment_time() {
        // Handles resolved long before the scope exists must still
        // attribute increments to it — the Metered-wrapper pattern.
        let handle = global().counter("scope_test.cached_handle");
        let scope = Arc::new(MetricsRegistry::new());
        {
            let _guard = enter_scope(Arc::clone(&scope));
            handle.add(7);
        }
        assert_eq!(scope.snapshot().counter("scope_test.cached_handle"), 7);
    }

    #[test]
    fn nested_scopes_shadow_and_restore() {
        let outer = Arc::new(MetricsRegistry::new());
        let inner = Arc::new(MetricsRegistry::new());
        let name = "scope_test.nested";
        let _outer_guard = enter_scope(Arc::clone(&outer));
        global().counter(name).inc();
        {
            let _inner_guard = enter_scope(Arc::clone(&inner));
            global().counter(name).add(10);
        }
        global().counter(name).inc();
        assert_eq!(outer.snapshot().counter(name), 2);
        assert_eq!(inner.snapshot().counter(name), 10);
    }

    #[test]
    fn scopes_are_thread_local() {
        let scope = Arc::new(MetricsRegistry::new());
        let _guard = enter_scope(Arc::clone(&scope));
        let t = std::thread::spawn(|| {
            assert!(current_scope().is_none());
            global().counter("scope_test.other_thread").inc();
        });
        t.join().expect("other thread");
        assert_eq!(scope.snapshot().counter("scope_test.other_thread"), 0);
    }

    #[test]
    #[should_panic(expected = "must be a plain MetricsRegistry")]
    fn forwarding_registry_cannot_be_a_scope() {
        // A forwarding scope would mirror increments back into itself.
        let _ = enter_scope(Arc::new(MetricsRegistry::new_forwarding()));
    }
}
