//! # udao-bench — the experiment harness
//!
//! Shared machinery for the figure-regeneration binaries (`fig1c`,
//! `fig2_probe`, `fig3_loss`, `fig4`, `fig5`, `fig6`, `fig8`, `fig9`,
//! `summary`): problem construction from learned models, a uniform runner
//! over all seven MOO methods, the method-agnostic uncertain-space series,
//! and CSV output under `target/experiments/`.

#![warn(missing_docs)]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use udao::{BatchRequest, ModelFamily, StreamRequest, Udao};
use udao_baselines::evo::{nsga2, EvoConfig};
use udao_baselines::mobo::{ehvi, pesm, pesm_config, MoboConfig};
use udao_baselines::nc::{normal_constraints, NcConfig};
use udao_baselines::ws::{weighted_sum, WsConfig};
use udao_core::pareto::{uncertain_space, ParetoPoint};
use udao_core::pf::{PfOptions, PfVariant, ProgressiveFrontier};
use udao_core::MooProblem;
use udao_sparksim::objectives::{BatchObjective, StreamObjective};
use udao_sparksim::{ClusterSpec, Workload};

/// Directory experiment CSVs are written to.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Write a CSV file under [`out_dir`] and echo the path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    println!("[csv] wrote {}", path.display());
}

/// A UDAO instance with experiment-friendly PF settings.
pub fn experiment_udao() -> Udao {
    Udao::new(ClusterSpec::paper_cluster())
}

/// Build a learned-model batch MOO problem for `workload`: train the given
/// family on `n_traces` simulator traces, return the problem over the
/// requested objectives (CostCores stays analytic).
pub fn batch_problem(
    udao: &Udao,
    workload: &Workload,
    family: ModelFamily,
    n_traces: usize,
    objectives: &[BatchObjective],
) -> MooProblem {
    udao.train_batch(workload, n_traces, family, objectives);
    let mut req = BatchRequest::new(workload.id.clone());
    for o in objectives {
        req = req.objective(*o);
    }
    udao.batch_problem(&req).expect("models trained")
}

/// Build a learned-model streaming MOO problem.
pub fn stream_problem(
    udao: &Udao,
    workload: &Workload,
    family: ModelFamily,
    n_traces: usize,
    objectives: &[StreamObjective],
) -> MooProblem {
    udao.train_streaming(workload, n_traces, family, objectives);
    let mut req = StreamRequest::new(workload.id.clone());
    for o in objectives {
        req = req.objective(*o);
    }
    udao.stream_problem(&req).expect("models trained")
}

/// The MOO methods of the §VI comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Progressive Frontier, approximate parallel.
    PfAp,
    /// Progressive Frontier, approximate sequential.
    PfAs,
    /// Weighted Sum.
    Ws,
    /// Normalized Constraints.
    Nc,
    /// NSGA-II.
    Evo,
    /// EHVI-style MOBO.
    Qehvi,
    /// PESM-style MOBO.
    Pesm,
}

impl Method {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Method::PfAp => "PF-AP",
            Method::PfAs => "PF-AS",
            Method::Ws => "WS",
            Method::Nc => "NC",
            Method::Evo => "Evo",
            Method::Qehvi => "qEHVI",
            Method::Pesm => "PESM",
        }
    }
}

/// Result of one method run, normalized for cross-method comparison.
pub struct MethodRun {
    /// `(elapsed seconds, uncertain space %)` series.
    pub series: Vec<(f64, f64)>,
    /// Final frontier.
    pub frontier: Vec<ParetoPoint>,
    /// Seconds until the method first produced a usable Pareto set: for PF
    /// the first batch of points of its incremental run; for every other
    /// method the completion time of its *smallest-budget* run, since WS,
    /// NC, Evo, and the MOBOs return nothing usable mid-run.
    pub first_set_time: f64,
}

/// Experiment budgets: the increasing point requests of the Fig. 4/5
/// protocol ("we request increasingly more Pareto points as more computing
/// time is invested"), plus the per-point evaluation multiplier for
/// NSGA-II (its per-run budget is `points × evo_evals_per_point`).
pub struct Budgets {
    /// Increasing Pareto-point requests.
    pub sizes: Vec<usize>,
    /// NSGA-II objective evaluations per requested point (a 40-strong
    /// population needs tens of generations before its front stabilizes).
    pub evo_evals_per_point: usize,
    /// MOBO true-model evaluations per requested frontier point (each
    /// costs a GP refit plus an acquisition sweep).
    pub mobo_evals_per_point: usize,
}

impl Default for Budgets {
    fn default() -> Self {
        Self { sizes: vec![10, 20, 30], evo_evals_per_point: 100, mobo_evals_per_point: 5 }
    }
}

impl Budgets {
    /// Single-request budget (used by the frontier figures).
    pub fn single(points: usize) -> Self {
        Self { sizes: vec![points], ..Default::default() }
    }

    /// The largest request.
    pub fn max_points(&self) -> usize {
        self.sizes.last().copied().unwrap_or(10)
    }
}

/// Run `method` on `problem` under the paper's protocol and score its
/// uncertain-space series against the shared `(utopia, nadir)` box.
///
/// PF runs once, incrementally, to the largest request; non-incremental
/// methods restart from scratch at every request size, with elapsed time
/// accumulated — exactly how a cloud optimizer would have to use them.
pub fn run_method(
    method: Method,
    problem: &MooProblem,
    budgets: &Budgets,
    utopia: &[f64],
    nadir: &[f64],
) -> MethodRun {
    let score = |fs: &[ParetoPoint]| -> f64 {
        let v: Vec<Vec<f64>> = fs.iter().map(|p| p.f.clone()).collect();
        uncertain_space(&v, utopia, nadir) * 100.0
    };
    match method {
        Method::PfAp | Method::PfAs => {
            let variant = if method == Method::PfAp {
                PfVariant::ApproxParallel
            } else {
                PfVariant::ApproxSequential
            };
            let mut opts = PfOptions::default();
            opts.mogd.alpha = 1.0;
            let run = ProgressiveFrontier::new(variant, opts)
                .solve(problem, budgets.max_points())
                .expect("pf run");
            let series = run
                .history
                .iter()
                .map(|s| (s.elapsed, s.uncertain_frac * 100.0))
                .collect::<Vec<_>>();
            let first_batch = budgets.sizes.first().copied().unwrap_or(2).min(5);
            let first = run
                .history
                .iter()
                .find(|s| s.frontier_len >= first_batch)
                .map(|s| s.elapsed)
                .unwrap_or(f64::NAN);
            MethodRun { series, frontier: run.frontier, first_set_time: first }
        }
        _ => {
            let mut elapsed = 0.0;
            let mut series = Vec::new();
            let mut frontier = Vec::new();
            for &size in &budgets.sizes {
                let t0 = std::time::Instant::now();
                let run = match method {
                    Method::Ws => weighted_sum(problem, size, &WsConfig::default()),
                    Method::Nc => normal_constraints(problem, size, &NcConfig::default()),
                    Method::Evo => nsga2(
                        problem,
                        size * budgets.evo_evals_per_point,
                        &EvoConfig::default(),
                    ),
                    Method::Qehvi => {
                        ehvi::run(problem, size * budgets.mobo_evals_per_point, &MoboConfig::default())
                    }
                    Method::Pesm => {
                        pesm::run(problem, size * budgets.mobo_evals_per_point, &pesm_config())
                    }
                    Method::PfAp | Method::PfAs => unreachable!(),
                };
                elapsed += t0.elapsed().as_secs_f64();
                series.push((elapsed, score(&run.frontier)));
                frontier = run.frontier;
            }
            let first = series
                .iter()
                .find(|(_, u)| *u < 100.0)
                .map(|(t, _)| *t)
                .unwrap_or(f64::NAN);
            MethodRun { series, frontier, first_set_time: first }
        }
    }
}

/// Uncertain-space % of a series at wall-clock `threshold` seconds (100%
/// before the first checkpoint).
pub fn uncertainty_at(series: &[(f64, f64)], threshold: f64) -> f64 {
    let mut best = f64::NAN;
    for (t, u) in series {
        if *t <= threshold && (best.is_nan() || *u < best) {
            best = *u;
        }
    }
    if best.is_nan() {
        100.0
    } else {
        best.clamp(0.0, 100.0)
    }
}

/// Median of a mutable slice (NaNs sorted last); 100 for empty input.
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 100.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Greater));
    values[values.len() / 2]
}

/// Format a frontier as `f1,f2[,f3]` CSV rows (sorted by the first
/// objective).
pub fn frontier_rows(frontier: &[ParetoPoint]) -> Vec<String> {
    let mut fs: Vec<&Vec<f64>> = frontier.iter().map(|p| &p.f).collect();
    fs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    fs.iter()
        .map(|f| f.iter().map(|v| format!("{v:.4}")).collect::<Vec<_>>().join(","))
        .collect()
}

/// The expert "manual" configuration of Expt 5: a sensible hand-tuned
/// setup practitioners would reach for on this cluster.
pub fn expert_manual_conf() -> udao_sparksim::BatchConf {
    udao_sparksim::BatchConf {
        default_parallelism: 96,
        executor_instances: 12,
        executor_cores: 4,
        executor_memory_gb: 16,
        reducer_max_size_in_flight_mb: 48,
        shuffle_sort_bypass_merge_threshold: 200,
        shuffle_compress: true,
        memory_fraction: 0.6,
        columnar_batch_size: 10_000,
        max_partition_mb: 128,
        broadcast_threshold_mb: 10,
        shuffle_partitions: 96,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use udao_core::objective::{FnModel, ObjectiveModel};

    fn toy() -> MooProblem {
        let lat: Arc<dyn ObjectiveModel> =
            Arc::new(FnModel::new(2, |x| 100.0 + 200.0 * (1.0 - x[0]) + 30.0 * x[1]));
        let cost: Arc<dyn ObjectiveModel> =
            Arc::new(FnModel::new(2, |x| 8.0 + 16.0 * x[0] + 8.0 * x[1]));
        MooProblem::new(2, vec![lat, cost])
    }

    #[test]
    fn run_method_produces_series_for_every_method() {
        let p = toy();
        let (u, n) = udao_baselines::reference_box(&p, 1);
        let budgets = Budgets { sizes: vec![8], ..Default::default() };
        for m in [Method::PfAp, Method::PfAs, Method::Ws, Method::Nc, Method::Evo, Method::Qehvi] {
            let run = run_method(m, &p, &budgets, &u, &n);
            assert!(!run.frontier.is_empty(), "{} found nothing", m.label());
            assert!(!run.series.is_empty(), "{} has no series", m.label());
        }
    }

    #[test]
    fn uncertainty_at_respects_thresholds() {
        let series = vec![(0.5, 80.0), (1.0, 40.0), (2.0, 10.0)];
        assert_eq!(uncertainty_at(&series, 0.1), 100.0, "before first checkpoint");
        assert_eq!(uncertainty_at(&series, 0.5), 80.0);
        assert_eq!(uncertainty_at(&series, 1.5), 40.0);
        assert_eq!(uncertainty_at(&series, 10.0), 10.0);
    }

    #[test]
    fn median_handles_edges() {
        assert_eq!(median(&mut []), 100.0);
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn frontier_rows_are_sorted_csv() {
        let pts = vec![
            ParetoPoint::new(vec![0.0], vec![2.0, 1.0]),
            ParetoPoint::new(vec![0.0], vec![1.0, 2.0]),
        ];
        let rows = frontier_rows(&pts);
        assert_eq!(rows[0], "1.0000,2.0000");
    }
}
