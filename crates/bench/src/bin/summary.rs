//! Headline summary (abstract / §I claims): the 2–50× speedup of the PF
//! algorithms over existing MOO methods on time-to-first-Pareto-set, and
//! the TPCx-BB runtime reduction vs OtterTune.
//!
//! Run: `cargo run --release -p udao-bench --bin summary [-- --jobs N]`

use udao::ModelFamily;
use udao_bench::{batch_problem, experiment_udao, run_method, write_csv, Budgets, Method};
use udao_sparksim::batch_workloads;
use udao_sparksim::objectives::BatchObjective;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(12usize);

    println!("== Headline: time to first Pareto set, PF-AP vs prior MOO methods ==");
    println!("({jobs} batch workloads, 2-D latency/cost, DNN models)\n");
    let methods =
        [Method::PfAp, Method::PfAs, Method::Ws, Method::Nc, Method::Evo, Method::Qehvi, Method::Pesm];
    let mut first_times: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    let budgets = Budgets { sizes: vec![10, 20], ..Default::default() };
    let workloads = batch_workloads();
    for (wi, w) in workloads.iter().take(jobs).enumerate() {
        let udao = experiment_udao();
        let p = batch_problem(
            &udao,
            w,
            ModelFamily::Dnn,
            80,
            &[BatchObjective::Latency, BatchObjective::CostCores],
        );
        let (u, n) = udao_baselines::reference_box(&p, wi as u64);
        for (mi, m) in methods.iter().enumerate() {
            let run = run_method(*m, &p, &budgets, &u, &n);
            if run.first_set_time.is_finite() {
                first_times[mi].push(run.first_set_time);
            }
        }
        eprintln!("  ... workload {} done", w.id);
    }
    let med = |v: &mut Vec<f64>| -> f64 {
        if v.is_empty() {
            return f64::NAN;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let pf_time = med(&mut first_times[0].clone());
    println!("{:>8} {:>20} {:>18}", "method", "median first-set (s)", "slowdown vs PF-AP");
    let mut rows = Vec::new();
    for (mi, m) in methods.iter().enumerate() {
        let t = med(&mut first_times[mi]);
        let factor = t / pf_time;
        println!("{:>8} {:>20.3} {:>17.1}x", m.label(), t, factor);
        rows.push(format!("{},{t:.4},{factor:.2}", m.label()));
    }
    write_csv("summary_speedup.csv", "method,median_first_set_s,slowdown_vs_pfap", &rows);
    println!("\n(paper claim: 2-50x speedup over existing MOO methods — compare the");
    println!(" slowdown column; see fig6 ef for the 26-49% TPCx-BB runtime reduction)");
}
