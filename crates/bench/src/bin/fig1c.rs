//! Fig. 1(c) — latency benefits of UDAO over OtterTune on TPCx-BB Q2 as
//! the application preference moves from balanced (0.5, 0.5) to
//! latency-favoring (0.9, 0.1).
//!
//! Run: `cargo run --release -p udao-bench --bin fig1c`

use udao::{BatchRequest, ModelFamily, Udao};
use udao_baselines::ottertune::{tune, OtterTuneConfig};
use udao_bench::{experiment_udao, write_csv};
use udao_sparksim::objectives::BatchObjective;
use udao_sparksim::{batch_workloads, BatchConf};

fn main() {
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").expect("Q2");

    let train = |family: ModelFamily| -> Udao {
        let udao = experiment_udao();
        udao.train_batch(q2, 100, family, &[BatchObjective::Latency]);
        udao
    };

    println!("Fig. 1(c) — TPCx-BB Q2, measured latency by preference vector");
    println!("{:>14} {:>16} {:>12} {:>16} {:>12}", "weights", "OtterTune lat(s)", "ot cores", "UDAO lat(s)", "udao cores");
    let mut rows = Vec::new();
    for weights in [[0.5, 0.5], [0.9, 0.1]] {
        // UDAO: DNN models + PF + WUN.
        let udao = train(ModelFamily::Dnn);
        let req = BatchRequest::new(q2.id.clone())
            .objective(BatchObjective::Latency)
            .objective_bounded(BatchObjective::CostCores, 4.0, 58.0)
            .weights(weights.to_vec())
            .points(12);
        let rec = udao.recommend_batch(&req).expect("udao recommendation");
        let u_conf = rec.batch_conf.unwrap();
        let u_meas = udao.measure_batch(q2, &u_conf, 1).expect("simulatable workload");

        // OtterTune: GP models + weighted-sum EI search.
        let udao_gp = train(ModelFamily::Gp);
        let problem = udao_gp.batch_problem(&req).unwrap();
        let (mut u, mut n) = udao_baselines::reference_box(&problem, q2.seed);
        for (j, b) in problem.constraints.iter().enumerate() {
            if b.lo.is_finite() {
                u[j] = u[j].max(b.lo);
            }
            if b.hi.is_finite() {
                n[j] = n[j].min(b.hi);
            }
        }
        let objective = |x: &[f64]| -> f64 {
            let mut total = 0.0;
            for (j, m) in problem.objectives.iter().enumerate() {
                let v = m.predict(x);
                let width = (n[j] - u[j]).max(1e-9);
                total += weights[j] * (v - u[j]) / width;
                let b = problem.constraints[j];
                if v < b.lo || v > b.hi {
                    total += 10.0;
                }
            }
            total
        };
        let ot =
            tune(problem.dim, &objective, &OtterTuneConfig { seed: q2.seed, ..Default::default() });
        let snapped = BatchConf::space().snap(&ot.x).unwrap();
        let o_conf = BatchConf::from_configuration(&BatchConf::space().decode(&snapped).unwrap());
        let o_meas = udao_gp.measure_batch(q2, &o_conf, 1).expect("simulatable workload");

        let reduction = (1.0 - u_meas.latency_s / o_meas.latency_s.max(1e-9)) * 100.0;
        println!(
            "{:>14} {:>16.1} {:>12} {:>16.1} {:>12}   ({reduction:.0}% latency reduction)",
            format!("({},{})", weights[0], weights[1]),
            o_meas.latency_s,
            o_conf.total_cores(),
            u_meas.latency_s,
            u_conf.total_cores()
        );
        rows.push(format!(
            "{}|{},{:.2},{},{:.2},{}",
            weights[0],
            weights[1],
            o_meas.latency_s,
            o_conf.total_cores(),
            u_meas.latency_s,
            u_conf.total_cores()
        ));
    }
    write_csv(
        "fig1c_latency_vs_ottertune.csv",
        "weights,otter_latency,otter_cores,udao_latency,udao_cores",
        &rows,
    );
}
