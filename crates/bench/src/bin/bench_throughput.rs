//! Serving-engine throughput bench: concurrent `ServingEngine` workers over
//! a slow (I/O-bound) model provider, emitting `BENCH_throughput.json`.
//!
//! Run: `cargo run --release -p udao-bench --bin bench_throughput`
//! Fast sizing for CI smoke runs: `CHECK_FAST=1`.
//!
//! The workload models the paper's serving deployment: solves fetch their
//! learned model from a remote model server (here simulated by a provider
//! that sleeps `MODEL_DELAY` per fetch), then run a quick PF-AS solve.
//! Because requests are fetch-dominated, worker concurrency overlaps the
//! waits even on a single core — which is exactly what the engine's worker
//! pool is for. The bench measures requests/sec and p50/p95/p99 request
//! latency at 1, 4, and 8 workers and gates on >= 2x the single-worker
//! throughput at 4 workers.
//!
//! The binary validates its own output: the JSON is re-parsed and the gate
//! re-checked from the file, so a malformed report fails the run.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use udao::{
    BatchRequest, ClassQuotas, ModelFamily, ModelProvider, ServingEngine, ServingOptions, Udao,
};
use udao_model::server::{ModelKey, ModelServer};
use udao_sparksim::objectives::BatchObjective;
use udao_sparksim::{batch_workloads, ClusterSpec};

const OUT_PATH: &str = "BENCH_throughput.json";
/// Simulated remote model-server fetch latency per learned model.
const MODEL_DELAY: Duration = Duration::from_millis(40);
/// Worker-pool sizes to sweep; the gate compares index 1 (4 workers)
/// against index 0 (1 worker).
const WORKER_LEVELS: [usize; 3] = [1, 4, 8];

/// Model provider that simulates a slow remote model server.
struct SlowProvider {
    inner: Arc<ModelServer>,
    delay: Duration,
}

impl ModelProvider for SlowProvider {
    fn fetch(
        &self,
        key: &ModelKey,
    ) -> udao_core::Result<Option<Arc<dyn udao_core::ObjectiveModel>>> {
        std::thread::sleep(self.delay);
        self.inner.fetch(key)
    }
}

fn request() -> BatchRequest {
    BatchRequest::new("q2-v0")
        .objective(BatchObjective::Latency)
        .objective(BatchObjective::CostCores)
        .points(3)
}

/// Small PF configuration so each solve is dominated by the model fetch,
/// not by optimizer compute — the regime where worker concurrency pays off
/// even on a single core.
fn quick_pf() -> (udao_core::pf::PfVariant, udao_core::pf::PfOptions) {
    (
        udao_core::pf::PfVariant::ApproxSequential,
        udao_core::pf::PfOptions {
            mogd: udao_core::mogd::MogdConfig {
                multistarts: 2,
                max_iters: 30,
                ..Default::default()
            },
            max_probes: 8,
            ..Default::default()
        },
    )
}

struct Level {
    workers: usize,
    rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    let n = sorted_ms.len();
    let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    sorted_ms[idx]
}

/// Drive `requests` concurrent submissions through a fresh engine with the
/// given worker count; every request must complete successfully.
fn run_level(udao: &Arc<Udao>, workers: usize, requests: usize) -> Result<Level, String> {
    let engine: ServingEngine<BatchObjective> = ServingEngine::start_with(
        Arc::clone(udao),
        ServingOptions::default()
            .with_workers(workers)
            .with_queue_depth(requests.max(1))
            // The whole burst is one (standard) class; the derived
            // per-class quotas would shed the tail of larger levels.
            .with_class_quotas(ClassQuotas {
                interactive: requests.max(1),
                standard: requests.max(1),
                batch: requests.max(1),
            }),
    );
    let engine = Arc::new(engine);
    let started = Instant::now();
    let clients: Vec<_> = (0..requests)
        .map(|i| {
            let engine = Arc::clone(&engine);
            std::thread::Builder::new()
                .name(format!("bench-client-{i}"))
                .spawn(move || -> Result<f64, String> {
                    let submitted = Instant::now();
                    let handle =
                        engine.submit(request()).map_err(|e| format!("submit: {e}"))?;
                    handle.wait().map_err(|e| format!("solve: {e}"))?;
                    Ok(submitted.elapsed().as_secs_f64() * 1e3)
                })
                .map_err(|e| format!("spawn client: {e}"))
        })
        .collect();
    let mut latencies_ms = Vec::with_capacity(requests);
    for client in clients {
        let client = client?;
        latencies_ms.push(client.join().map_err(|_| "client panicked".to_string())??);
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Ok(Level {
        workers,
        rps: requests as f64 / elapsed,
        p50_ms: percentile(&latencies_ms, 0.50),
        p95_ms: percentile(&latencies_ms, 0.95),
        p99_ms: percentile(&latencies_ms, 0.99),
    })
}

fn run() -> Result<(), String> {
    let fast = std::env::var("CHECK_FAST").is_ok_and(|v| v == "1");
    let requests = if fast { 12 } else { 24 };

    let (variant, opts) = quick_pf();
    let builder = Udao::builder(ClusterSpec::paper_cluster()).pf(variant, opts);
    let server = builder.shared_model_server();
    let udao = builder
        .model_provider(Arc::new(SlowProvider { inner: server, delay: MODEL_DELAY }))
        .build()
        .map_err(|e| format!("build: {e}"))?;
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").ok_or("q2-v0 missing")?;
    udao.train_batch(q2, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    let udao = Arc::new(udao);

    // Warm-up solve so one-time costs (simulator tables, allocator) don't
    // land inside the single-worker level.
    udao.recommend_batch(&request()).map_err(|e| format!("warm-up: {e}"))?;

    let mut levels = Vec::new();
    for workers in WORKER_LEVELS {
        let level = run_level(&udao, workers, requests)?;
        println!(
            "[bench] {} worker(s): {:.1} req/s, p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
            level.workers, level.rps, level.p50_ms, level.p95_ms, level.p99_ms
        );
        levels.push(level);
    }

    let speedup_4x = levels[1].rps / levels[0].rps;
    let gate = speedup_4x >= 2.0;
    println!("[bench] 4-worker speedup over 1 worker: {speedup_4x:.2}x (gate: >= 2x)");

    let level_values: Vec<serde_json::Value> = levels
        .iter()
        .map(|l| {
            serde_json::json!({
                "workers": l.workers,
                "rps": l.rps,
                "p50_ms": l.p50_ms,
                "p95_ms": l.p95_ms,
                "p99_ms": l.p99_ms,
            })
        })
        .collect();
    let report = serde_json::json!({
        "workload": "q2-v0",
        "requests_per_level": requests,
        "model_delay_ms": MODEL_DELAY.as_millis() as u64,
        "levels": level_values,
        "speedup_4x": speedup_4x,
        "throughput_gate": gate,
    });
    let mut f = std::fs::File::create(OUT_PATH).map_err(|e| format!("create {OUT_PATH}: {e}"))?;
    let rendered =
        serde_json::to_string_pretty(&report).map_err(|e| format!("render report: {e}"))?;
    f.write_all(rendered.as_bytes()).map_err(|e| format!("write {OUT_PATH}: {e}"))?;
    println!("[bench] wrote {OUT_PATH}");

    // Self-validate: the gate decision must survive a round-trip through
    // the file, so downstream checks can trust the JSON alone.
    let raw = std::fs::read_to_string(OUT_PATH).map_err(|e| format!("read back: {e}"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("re-parse: {e}"))?;
    let recorded = parsed
        .get("speedup_4x")
        .and_then(serde_json::Value::as_f64)
        .ok_or("speedup_4x missing from report")?;
    if parsed.get("levels").and_then(serde_json::Value::as_array).map(|l| l.len())
        != Some(WORKER_LEVELS.len())
    {
        return Err("levels missing from report".into());
    }
    if recorded < 2.0 {
        return Err(format!(
            "throughput gate failed: 4-worker speedup {recorded:.2}x is below 2x"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_throughput failed: {e}");
            ExitCode::FAILURE
        }
    }
}
