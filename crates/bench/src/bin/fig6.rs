//! Fig. 6 — end-to-end comparison of UDAO (PF + WUN) against an
//! OtterTune-style single-objective tuner.
//!
//! Sub-figures: `ab` accurate models, batch, weights (0.5,0.5) and
//! (0.9,0.1); `cd` accurate models, streaming; `ef` inaccurate models with
//! measured latency on the top-12 long-running jobs (UDAO uses DNN models,
//! OtterTune its GP models); `gh` performance-improvement rate vs weighted
//! APE over 120 recommended configurations per system.
//!
//! Run: `cargo run --release -p udao-bench --bin fig6 -- [ab|cd|ef|gh|all]`

use udao::{BatchRequest, ModelFamily, StreamRequest, Udao};
use udao_baselines::ottertune::{tune, OtterTuneConfig};
use udao_bench::{expert_manual_conf, experiment_udao, write_csv};
use udao_core::MooProblem;
use udao_sparksim::objectives::{BatchObjective, StreamObjective};
use udao_sparksim::{batch_workloads, streaming_workloads, BatchConf, StreamConf, Workload};

/// The 30 batch test workloads: one (online) variant per template.
fn batch_test_workloads() -> Vec<Workload> {
    let all = batch_workloads();
    (1..=30)
        .map(|t| all.iter().find(|w| w.template == t && w.variant == 3).unwrap().clone())
        .collect()
}

/// The 15 streaming test workloads.
fn stream_test_workloads() -> Vec<Workload> {
    let all = streaming_workloads();
    all.iter().filter(|w| w.variant >= 4 && w.variant < 7).take(15).cloned().collect()
}

/// OtterTune path: collapse the objectives into a fixed weighted sum of
/// normalized model predictions (plus penalties for the request's value
/// constraints), then run GP/EI search over it.
fn ottertune_recommend(problem: &MooProblem, weights: &[f64], seed: u64) -> Vec<f64> {
    // Normalize inside the *constrained* objective box, exactly as the
    // PF/WUN side does — otherwise a wide unconstrained cost range makes
    // the cost term flat and the weighted sum effectively single-objective.
    let (mut u, mut n) = udao_baselines::reference_box(problem, seed);
    for (j, b) in problem.constraints.iter().enumerate() {
        if b.lo.is_finite() {
            u[j] = u[j].max(b.lo);
        }
        if b.hi.is_finite() {
            n[j] = n[j].min(b.hi);
        }
    }
    let objective = |x: &[f64]| -> f64 {
        let mut total = 0.0;
        for (j, m) in problem.objectives.iter().enumerate() {
            let v = m.predict(x);
            let width = (n[j] - u[j]).max(1e-9);
            total += weights[j] * (v - u[j]) / width;
            let b = problem.constraints[j];
            if v < b.lo {
                total += 10.0 + ((b.lo - v) / width).powi(2);
            } else if v > b.hi {
                total += 10.0 + ((v - b.hi) / width).powi(2);
            }
        }
        total
    };
    tune(problem.dim, &objective, &OtterTuneConfig { seed, ..Default::default() }).x
}

/// Trace budget per test workload. The paper's models train on a 24,560-
/// trace corpus with cross-workload encodings; per-workload GPs here need
/// a few hundred traces to reach comparable accuracy on the cliff-heavy
/// ML templates.
const TRACES: usize = 300;

fn batch_udao(family: ModelFamily, w: &Workload) -> Udao {
    let udao = experiment_udao();
    udao.train_batch(w, TRACES, family, &[BatchObjective::Latency]);
    udao
}

fn fig6ab() {
    println!("== Fig. 6(a)/(b): accurate models, batch, UDAO (PF-WUN) vs OtterTune ==");
    let tests = batch_test_workloads();
    for (tag, weights) in [("a", [0.5, 0.5]), ("b", [0.9, 0.1])] {
        println!("\nweights (latency, cost) = ({}, {}):", weights[0], weights[1]);
        println!(
            "{:>8} {:>12} {:>9} {:>12} {:>9} {:>12}",
            "job", "udao lat%", "udao cores", "otter lat%", "otter cores", "udao saves"
        );
        let mut rows = Vec::new();
        let mut dominated = 0usize;
        let mut savings = Vec::new();
        for w in &tests {
            let udao = batch_udao(ModelFamily::Gp, w);
            let req = BatchRequest::new(w.id.clone())
                .objective(BatchObjective::Latency)
                .objective_bounded(BatchObjective::CostCores, 4.0, 58.0)
                .weights(weights.to_vec())
                .points(12);
            let Ok(rec) = udao.recommend_batch(&req) else { continue };
            let problem = udao.batch_problem(&req).unwrap();
            let ot_x = ottertune_recommend(&problem, &weights, w.seed);
            let ot_f = problem.evaluate(&problem_space_snap(&ot_x)).unwrap();
            // Accurate-model regime: predicted values are the truth.
            let (u_lat, u_cores) = (rec.predicted[0], rec.predicted[1]);
            let (o_lat, o_cores) = (ot_f[0], ot_f[1]);
            let slower = u_lat.max(o_lat).max(1e-9);
            let save = (o_lat - u_lat) / o_lat.max(1e-9) * 100.0;
            savings.push(save);
            if u_lat <= o_lat && u_cores <= o_cores && (u_lat < o_lat || u_cores < o_cores) {
                dominated += 1;
            }
            println!(
                "{:>8} {:>11.1}% {:>9.0} {:>11.1}% {:>9.0} {:>11.1}%",
                w.id,
                u_lat / slower * 100.0,
                u_cores,
                o_lat / slower * 100.0,
                o_cores,
                save
            );
            rows.push(format!(
                "{},{u_lat:.2},{u_cores:.0},{o_lat:.2},{o_cores:.0},{save:.2}",
                w.id
            ));
        }
        savings.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "UDAO latency saving: median {:.0}%, max {:.0}%; dominates OtterTune on {} jobs",
            savings[savings.len() / 2],
            savings.last().unwrap(),
            dominated
        );
        write_csv(
            &format!("fig6{tag}_batch_accurate.csv"),
            "job,udao_latency,udao_cores,otter_latency,otter_cores,udao_saving_pct",
            &rows,
        );
    }
}

/// Snap a raw tuner output onto the decodable batch grid.
fn problem_space_snap(x: &[f64]) -> Vec<f64> {
    BatchConf::space().snap(x).expect("snaps")
}

fn fig6cd() {
    println!("== Fig. 6(c)/(d): accurate models, streaming, latency vs throughput ==");
    let tests = stream_test_workloads();
    for (tag, weights) in [("c", [0.5, 0.5]), ("d", [0.9, 0.1])] {
        println!("\nweights (latency, throughput) = ({}, {}):", weights[0], weights[1]);
        let mut rows = Vec::new();
        let mut savings = Vec::new();
        for w in &tests {
            let udao = experiment_udao();
            udao.train_streaming(
                w,
                100,
                ModelFamily::Gp,
                &[StreamObjective::Latency, StreamObjective::Throughput],
            );
            let req = StreamRequest::new(w.id.clone())
                .objective(StreamObjective::Latency)
                .objective(StreamObjective::Throughput)
                .weights(weights.to_vec())
                .points(12);
            let Ok(rec) = udao.recommend_streaming(&req) else { continue };
            let problem = udao.stream_problem(&req).unwrap();
            let ot_x = ottertune_recommend(&problem, &weights, w.seed);
            let snapped = StreamConf::space().snap(&ot_x).unwrap();
            let ot_f = problem.evaluate(&snapped).unwrap();
            let save = (ot_f[0] - rec.predicted[0]) / ot_f[0].max(1e-9) * 100.0;
            savings.push(save);
            println!(
                "  {:>8}: udao lat {:>8.2}s tput {:>11.0} | otter lat {:>8.2}s tput {:>11.0} | saving {:>6.1}%",
                w.id,
                rec.predicted[0],
                -rec.predicted[1],
                ot_f[0],
                -ot_f[1],
                save
            );
            rows.push(format!(
                "{},{:.3},{:.0},{:.3},{:.0},{save:.2}",
                w.id, rec.predicted[0], -rec.predicted[1], ot_f[0], -ot_f[1]
            ));
        }
        savings.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "UDAO latency saving: median {:.0}%, max {:.0}%",
            savings[savings.len() / 2],
            savings.last().unwrap()
        );
        write_csv(
            &format!("fig6{tag}_stream_accurate.csv"),
            "job,udao_latency,udao_throughput,otter_latency,otter_throughput,udao_saving_pct",
            &rows,
        );
    }
}

fn fig6ef() {
    println!("== Fig. 6(e)/(f): inaccurate models, measured latency, top-12 jobs ==");
    // Substitution note: the paper gives UDAO its DNN models here because
    // *their* DNN was the more accurate family (20% vs 35% WMAPE). On this
    // simulator substrate our from-scratch MLP ensembles underfit the
    // spill cliffs of the ML templates, so the GP family is the stronger
    // model for BOTH systems; UDAO accordingly optimizes GP models — the
    // comparison remains optimizer-vs-optimizer on equal model quality.
    println!("(both systems optimize their GP models; both measured on the cluster)");
    let tests = batch_test_workloads();
    // Rank by default-config latency; take the 12 longest-running.
    let udao0 = experiment_udao();
    let mut ranked: Vec<(f64, &Workload)> = tests
        .iter()
        .map(|w| (udao0.measure_batch(w, &BatchConf::spark_default(), 0).expect("simulatable workload").latency_s, w))
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let top12: Vec<&Workload> = ranked.iter().take(12).map(|(_, w)| *w).collect();

    for (tag, weights) in [("e", [0.5, 0.5]), ("f", [0.9, 0.1])] {
        println!("\nweights = ({}, {}):", weights[0], weights[1]);
        println!(
            "{:>8} {:>12} {:>12} {:>10} {:>10}",
            "job", "udao meas(s)", "otter meas(s)", "udao cores", "otter cores"
        );
        let mut rows = Vec::new();
        let (mut total_u, mut total_o) = (0.0, 0.0);
        let (mut cost_u, mut cost_o) = (0.0, 0.0);
        for w in &top12 {
            let udao = batch_udao(ModelFamily::Gp, w);
            let req = BatchRequest::new(w.id.clone())
                .objective(BatchObjective::Latency)
                .objective_bounded(BatchObjective::CostCores, 4.0, 58.0)
                .weights(weights.to_vec())
                .points(12);
            let Ok(rec) = udao.recommend_batch(&req) else { continue };
            let u_conf = rec.batch_conf.unwrap();
            let u_meas = udao.measure_batch(w, &u_conf, 7).expect("simulatable workload");
            // OtterTune with GP models.
            let udao_gp = batch_udao(ModelFamily::Gp, w);
            let problem = udao_gp.batch_problem(&req).unwrap();
            let ot_x = ottertune_recommend(&problem, &weights, w.seed);
            let o_conf = BatchConf::from_configuration(
                &BatchConf::space().decode(&problem_space_snap(&ot_x)).unwrap(),
            );
            let o_meas = udao_gp.measure_batch(w, &o_conf, 7).expect("simulatable workload");
            total_u += u_meas.latency_s;
            total_o += o_meas.latency_s;
            cost_u += u_meas.cores;
            cost_o += o_meas.cores;
            println!(
                "{:>8} {:>12.1} {:>12.1} {:>10} {:>10}",
                w.id,
                u_meas.latency_s,
                o_meas.latency_s,
                u_conf.total_cores(),
                o_conf.total_cores()
            );
            rows.push(format!(
                "{},{:.2},{:.2},{},{}",
                w.id,
                u_meas.latency_s,
                o_meas.latency_s,
                u_conf.total_cores(),
                o_conf.total_cores()
            ));
        }
        println!(
            "totals: UDAO {total_u:.0}s vs OtterTune {total_o:.0}s -> {:.0}% runtime reduction ({:+.0}% cores)",
            (1.0 - total_u / total_o.max(1e-9)) * 100.0,
            (cost_u / cost_o.max(1e-9) - 1.0) * 100.0
        );
        write_csv(
            &format!("fig6{tag}_measured.csv"),
            "job,udao_measured_latency,otter_measured_latency,udao_cores,otter_cores",
            &rows,
        );
    }
}

fn fig6gh() {
    println!("== Fig. 6(g)/(h): PIR vs weighted APE, 120 configurations per system ==");
    let tests = batch_test_workloads();
    let manual = expert_manual_conf();
    let mut rows_u = Vec::new();
    let mut rows_o = Vec::new();
    let (mut neg_u, mut neg_o, mut n_u, mut n_o) = (0usize, 0usize, 0usize, 0usize);
    let cost_objs = [BatchObjective::CostCores, BatchObjective::cost2()];
    for w in &tests {
        let manual_lat = experiment_udao().measure_batch(w, &manual, 3).expect("simulatable workload").latency_s;
        // Train each system once per job, covering both cost objectives.
        let udao_dnn = experiment_udao();
        udao_dnn.train_batch(
            w,
            100,
            ModelFamily::Dnn,
            &[BatchObjective::Latency, BatchObjective::cost2()],
        );
        let udao_gp = experiment_udao();
        udao_gp.train_batch(
            w,
            100,
            ModelFamily::Gp,
            &[BatchObjective::Latency, BatchObjective::cost2()],
        );
        for weights in [[0.5, 0.5], [0.9, 0.1]] {
            for cost in cost_objs {
                let req = BatchRequest::new(w.id.clone())
                    .objective(BatchObjective::Latency)
                    .objective(cost)
                    .weights(weights.to_vec())
                    .points(10);
                // UDAO / DNN.
                if let Ok(rec) = udao_dnn.recommend_batch(&req) {
                    let meas = udao_dnn.measure_batch(w, rec.batch_conf.as_ref().unwrap(), 5).expect("simulatable workload");
                    let ape = (rec.predicted[0] - meas.latency_s).abs() / meas.latency_s;
                    let pir = (manual_lat - meas.latency_s) / manual_lat * 100.0;
                    if pir < 0.0 {
                        neg_u += 1;
                    }
                    n_u += 1;
                    rows_u.push(format!("{},{ape:.4},{pir:.2}", w.id));
                }
                // OtterTune / GP.
                let problem = udao_gp.batch_problem(&req).unwrap();
                let ot_x = ottertune_recommend(&problem, &weights, w.seed);
                let snapped = problem_space_snap(&ot_x);
                let pred = problem.evaluate(&snapped).unwrap();
                let conf =
                    BatchConf::from_configuration(&BatchConf::space().decode(&snapped).unwrap());
                let meas = udao_gp.measure_batch(w, &conf, 5).expect("simulatable workload");
                let ape = (pred[0] - meas.latency_s).abs() / meas.latency_s;
                let pir = (manual_lat - meas.latency_s) / manual_lat * 100.0;
                if pir < 0.0 {
                    neg_o += 1;
                }
                n_o += 1;
                rows_o.push(format!("{},{ape:.4},{pir:.2}", w.id));
            }
        }
    }
    println!("UDAO:      {n_u} configs, {neg_u} with PIR < 0% (worse than the expert)");
    println!("OtterTune: {n_o} configs, {neg_o} with PIR < 0% (worse than the expert)");
    write_csv("fig6g_ottertune_pir.csv", "job,weighted_ape,pir_pct", &rows_o);
    write_csv("fig6h_udao_pir.csv", "job,weighted_ape,pir_pct", &rows_u);
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "ab" => fig6ab(),
        "cd" => fig6cd(),
        "ef" => fig6ef(),
        "gh" => fig6gh(),
        _ => {
            fig6ab();
            fig6cd();
            fig6ef();
            fig6gh();
        }
    }
}
