//! Appendix Fig. 9 — latency and cost2 (weighted CPU-hour + IO cost) under
//! inaccurate models, both measured on the simulated cluster and as
//! predicted by each system's own models, for the top-12 long-running
//! batch jobs at weights (0.5, 0.5) and (0.9, 0.1).
//!
//! UDAO optimizes DNN models; OtterTune optimizes its GP models (both for
//! latency and for the learned cost2).
//!
//! Run: `cargo run --release -p udao-bench --bin fig9`

use udao::{BatchRequest, ModelFamily, Udao};
use udao_baselines::ottertune::{tune, OtterTuneConfig};
use udao_bench::{experiment_udao, write_csv};
use udao_sparksim::objectives::BatchObjective;
use udao_sparksim::{batch_workloads, BatchConf, Workload};

fn test_workloads() -> Vec<Workload> {
    let all = batch_workloads();
    (1..=30)
        .map(|t| all.iter().find(|w| w.template == t && w.variant == 3).unwrap().clone())
        .collect()
}

fn ottertune_x(
    problem: &udao_core::MooProblem,
    weights: &[f64],
    seed: u64,
) -> Vec<f64> {
    let (mut u, mut n) = udao_baselines::reference_box(problem, seed);
    for (j, b) in problem.constraints.iter().enumerate() {
        if b.lo.is_finite() {
            u[j] = u[j].max(b.lo);
        }
        if b.hi.is_finite() {
            n[j] = n[j].min(b.hi);
        }
    }
    let objective = |x: &[f64]| -> f64 {
        problem
            .objectives
            .iter()
            .enumerate()
            .map(|(j, m)| weights[j] * (m.predict(x) - u[j]) / (n[j] - u[j]).max(1e-9))
            .sum()
    };
    tune(problem.dim, &objective, &OtterTuneConfig { seed, ..Default::default() }).x
}

fn main() {
    let cost2 = BatchObjective::cost2();
    let tests = test_workloads();
    let udao0 = experiment_udao();
    let mut ranked: Vec<(f64, &Workload)> = tests
        .iter()
        .map(|w| (udao0.measure_batch(w, &BatchConf::spark_default(), 0).expect("simulatable workload").latency_s, w))
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let top12: Vec<&Workload> = ranked.iter().take(12).map(|(_, w)| *w).collect();

    // Train each system once per job (latency + cost2 models).
    let train = |family: ModelFamily, w: &Workload| -> Udao {
        let udao = experiment_udao();
        udao.train_batch(w, 100, family, &[BatchObjective::Latency, cost2]);
        udao
    };
    // Same substitution as fig6 ef: on this substrate the GP family is the
    // more accurate model for both systems (see EXPERIMENTS.md), so the
    // optimizer comparison runs on equal GP models.
    let systems: Vec<(&Workload, Udao, Udao)> =
        top12.iter().map(|w| (*w, train(ModelFamily::Gp, w), train(ModelFamily::Gp, w))).collect();

    for (tag, weights) in [("ab", [0.5, 0.5]), ("cd", [0.9, 0.1])] {
        println!("== Fig. 9 ({tag}): weights = ({}, {}), latency + cost2 ==", weights[0], weights[1]);
        println!(
            "{:>8} | {:>10} {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10} {:>10}",
            "job", "U meas(s)", "U pred(s)", "O meas(s)", "O pred(s)", "U meas$", "U pred$", "O meas$", "O pred$"
        );
        let mut rows = Vec::new();
        let (mut tu, mut to, mut cu, mut co) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (w, udao_dnn, udao_gp) in &systems {
            let req = BatchRequest::new(w.id.clone())
                .objective(BatchObjective::Latency)
                .objective(cost2)
                .weights(weights.to_vec())
                .points(10);
            // UDAO (DNN).
            let Ok(rec) = udao_dnn.recommend_batch(&req) else { continue };
            let u_meas = udao_dnn.measure_batch(w, rec.batch_conf.as_ref().unwrap(), 11).expect("simulatable workload");
            let u_cost_meas = cost2.extract(&u_meas);
            // OtterTune (GP).
            let problem = udao_gp.batch_problem(&req).unwrap();
            let x = ottertune_x(&problem, &weights, w.seed);
            let snapped = BatchConf::space().snap(&x).unwrap();
            let o_pred = problem.evaluate(&snapped).unwrap();
            let o_conf =
                BatchConf::from_configuration(&BatchConf::space().decode(&snapped).unwrap());
            let o_meas = udao_gp.measure_batch(w, &o_conf, 11).expect("simulatable workload");
            let o_cost_meas = cost2.extract(&o_meas);
            tu += u_meas.latency_s;
            to += o_meas.latency_s;
            cu += u_cost_meas;
            co += o_cost_meas;
            println!(
                "{:>8} | {:>10.1} {:>10.1} {:>10.1} {:>10.1} | {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                w.id,
                u_meas.latency_s,
                rec.predicted[0],
                o_meas.latency_s,
                o_pred[0],
                u_cost_meas,
                rec.predicted[1],
                o_cost_meas,
                o_pred[1]
            );
            rows.push(format!(
                "{},{:.3},{:.3},{:.3},{:.3},{:.5},{:.5},{:.5},{:.5}",
                w.id,
                u_meas.latency_s,
                rec.predicted[0],
                o_meas.latency_s,
                o_pred[0],
                u_cost_meas,
                rec.predicted[1],
                o_cost_meas,
                o_pred[1]
            ));
        }
        println!(
            "totals: UDAO {tu:.0}s / {cu:.3}$ vs OtterTune {to:.0}s / {co:.3}$ -> {:.0}% latency reduction, {:+.0}% cost2",
            (1.0 - tu / to.max(1e-9)) * 100.0,
            (cu / co.max(1e-9) - 1.0) * 100.0
        );
        write_csv(
            &format!("fig9{tag}_cost2.csv"),
            "job,udao_meas_lat,udao_pred_lat,otter_meas_lat,otter_pred_lat,udao_meas_cost2,udao_pred_cost2,otter_meas_cost2,otter_pred_cost2",
            &rows,
        );
        println!();
    }
}
