//! Fig. 4 — comparative MOO results on the batch (TPCx-BB) workloads,
//! 2-D objectives (latency, cost in #cores), DNN latency models.
//!
//! Sub-figures: `a` uncertain space vs time for PF-AP/PF-AS/WS/NC (job 9);
//! `b` WS/NC frontiers; `c` PF-AP frontier; `d` uncertain space for
//! PF-AP/Evo/qEHVI/PESM; `e` Evo frontier inconsistency at 30/40/50
//! probes; `f` uncertain space across the full workload population.
//!
//! Run: `cargo run --release -p udao-bench --bin fig4 -- [a|b|c|d|e|f|all] [--jobs N]`

use udao::ModelFamily;
use udao_baselines::evo::{nsga2, EvoConfig};
use udao_bench::{
    batch_problem, experiment_udao, frontier_rows, median, run_method, uncertainty_at, write_csv,
    Budgets, Method,
};
use udao_core::MooProblem;
use udao_sparksim::batch_workloads;
use udao_sparksim::objectives::BatchObjective;

fn job9_problem() -> (MooProblem, Vec<f64>, Vec<f64>) {
    let udao = experiment_udao();
    let workloads = batch_workloads();
    let job9 = workloads.iter().find(|w| w.id == "q9-v0").expect("job 9");
    let p = batch_problem(
        &udao,
        job9,
        ModelFamily::Dnn,
        100,
        &[BatchObjective::Latency, BatchObjective::CostCores],
    );
    let (u, n) = udao_baselines::reference_box(&p, 9);
    (p, u, n)
}

fn series_csv(name: &str, runs: &[(&str, &udao_bench::MethodRun)]) {
    let mut rows = Vec::new();
    for (label, run) in runs {
        for (t, u) in &run.series {
            rows.push(format!("{label},{t:.4},{u:.2}"));
        }
    }
    write_csv(name, "method,elapsed_s,uncertain_pct", &rows);
}

fn fig4a() {
    println!("== Fig. 4(a): uncertain space vs time, job 9, 2-D ==");
    let (p, u, n) = job9_problem();
    let budgets = Budgets::default();
    let runs: Vec<(Method, udao_bench::MethodRun)> =
        [Method::PfAp, Method::PfAs, Method::Ws, Method::Nc]
            .into_iter()
            .map(|m| (m, run_method(m, &p, &budgets, &u, &n)))
            .collect();
    for (m, r) in &runs {
        println!(
            "{:>6}: first Pareto set after {:.2}s, final uncertainty {:.1}%",
            m.label(),
            r.first_set_time,
            r.series.last().map(|(_, u)| *u).unwrap_or(100.0)
        );
    }
    let refs: Vec<(&str, &udao_bench::MethodRun)> =
        runs.iter().map(|(m, r)| (m.label(), r)).collect();
    series_csv("fig4a_uncertainty.csv", &refs);
}

fn fig4bc() {
    println!("== Fig. 4(b)/(c): frontiers of WS, NC, and PF-AP, job 9 ==");
    let (p, u, n) = job9_problem();
    let budgets = Budgets::single(10);
    for (m, file) in [
        (Method::Ws, "fig4b_ws_frontier.csv"),
        (Method::Nc, "fig4b_nc_frontier.csv"),
        (Method::PfAp, "fig4c_pfap_frontier.csv"),
    ] {
        let t0 = std::time::Instant::now();
        let run = run_method(m, &p, &budgets, &u, &n);
        println!(
            "{:>6}: {:>2} frontier points in {:.2}s (requested 10)",
            m.label(),
            run.frontier.len(),
            t0.elapsed().as_secs_f64()
        );
        write_csv(file, "latency,cost_cores", &frontier_rows(&run.frontier));
    }
}

fn fig4d() {
    println!("== Fig. 4(d): uncertain space vs time, PF-AP vs Evo/qEHVI/PESM, job 9 ==");
    let (p, u, n) = job9_problem();
    let budgets = Budgets::default();
    let runs: Vec<(Method, udao_bench::MethodRun)> =
        [Method::PfAp, Method::Evo, Method::Qehvi, Method::Pesm]
            .into_iter()
            .map(|m| (m, run_method(m, &p, &budgets, &u, &n)))
            .collect();
    for (m, r) in &runs {
        println!(
            "{:>6}: first Pareto set after {:.2}s, final uncertainty {:.1}%",
            m.label(),
            r.first_set_time,
            r.series.last().map(|(_, u)| *u).unwrap_or(100.0)
        );
    }
    let refs: Vec<(&str, &udao_bench::MethodRun)> =
        runs.iter().map(|(m, r)| (m.label(), r)).collect();
    series_csv("fig4d_uncertainty.csv", &refs);
}

fn fig4e() {
    println!("== Fig. 4(e): Evo frontier inconsistency across probe budgets, job 9 ==");
    let (p, _, _) = job9_problem();
    let mut rows = Vec::new();
    for probes in [300usize, 400, 500] {
        let run = nsga2(&p, probes, &EvoConfig::default());
        println!("  {probes} probes -> {} frontier points", run.frontier.len());
        for r in frontier_rows(&run.frontier) {
            rows.push(format!("{probes},{r}"));
        }
    }
    write_csv("fig4e_evo_frontiers.csv", "probes,latency,cost_cores", &rows);
    println!("  (compare the three frontiers: the same latency maps to different costs)");
}

fn fig4f(jobs: usize) {
    println!("== Fig. 4(f): uncertain space across {jobs} batch workloads ==");
    let thresholds = [0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0];
    let methods = [Method::PfAp, Method::Evo, Method::Qehvi, Method::Nc];
    let workloads = batch_workloads();
    let mut per_method: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::new(); thresholds.len()]; methods.len()];
    let budgets = Budgets { sizes: vec![10, 15], ..Default::default() };
    for (wi, w) in workloads.iter().take(jobs).enumerate() {
        let udao = experiment_udao();
        // Small DNNs keep the 258-job fleet tractable; same family as 4(a).
        let p = batch_problem(
            &udao,
            w,
            ModelFamily::Dnn,
            60,
            &[BatchObjective::Latency, BatchObjective::CostCores],
        );
        let (u, n) = udao_baselines::reference_box(&p, wi as u64);
        for (mi, m) in methods.iter().enumerate() {
            let run = run_method(*m, &p, &budgets, &u, &n);
            for (ti, t) in thresholds.iter().enumerate() {
                per_method[mi][ti].push(uncertainty_at(&run.series, *t));
            }
        }
        if (wi + 1) % 20 == 0 {
            eprintln!("  ... {}/{jobs} workloads", wi + 1);
        }
    }
    println!("median uncertain space (%) at elapsed-time thresholds:");
    print!("{:>8}", "method");
    for t in thresholds {
        print!("{t:>8}");
    }
    println!();
    let mut rows = Vec::new();
    for (mi, m) in methods.iter().enumerate() {
        print!("{:>8}", m.label());
        let mut cells = Vec::new();
        for vals in per_method[mi].iter_mut() {
            let md = median(vals);
            print!("{md:>8.1}");
            cells.push(format!("{md:.2}"));
        }
        println!();
        rows.push(format!("{},{}", m.label(), cells.join(",")));
    }
    write_csv(
        "fig4f_population.csv",
        "method,u_at_0.05s,u_at_0.1s,u_at_0.2s,u_at_0.5s,u_at_1s,u_at_2s,u_at_5s,u_at_10s",
        &rows,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(258);
    match which {
        "a" => fig4a(),
        "b" | "c" => fig4bc(),
        "d" => fig4d(),
        "e" => fig4e(),
        "f" => fig4f(jobs),
        _ => {
            fig4a();
            fig4bc();
            fig4d();
            fig4e();
            fig4f(jobs);
        }
    }
}
