//! Fig. 3(c–f) — the MOGD loss surfaces for the CO problem
//! `C_{F1F2}: min F1 (latency) s.t. F1 ∈ [100, 200], F2 (cost) ∈ [8, 16]`.
//!
//! (c) the loss term on normalized F1, (d) the loss term on normalized F2,
//! (e) the total loss over univariate #cores with the paper's toy models
//! `F1 = max(100, 2400/x)`, `F2 = min(24, x)`, and (f) the bivariate loss
//! over (#executors, #cores/executor).
//!
//! Run: `cargo run --release -p udao-bench --bin fig3_loss`

use std::sync::Arc;
use udao_bench::write_csv;
use udao_core::mogd::{Mogd, MogdConfig};
use udao_core::objective::{FnModel, ObjectiveModel};
use udao_core::solver::{Bound, CoProblem};
use udao_core::MooProblem;

fn main() {
    let penalty = 100.0;

    // --- (c) / (d): per-objective loss terms over the normalized value. ---
    let mut rows_c = Vec::new();
    let mut rows_d = Vec::new();
    for i in 0..=200 {
        let ft = -0.5 + 2.0 * i as f64 / 200.0; // normalized value in [-0.5, 1.5]
        let target_loss = if (0.0..=1.0).contains(&ft) {
            ft * ft
        } else {
            (ft - 0.5) * (ft - 0.5) + penalty
        };
        let constraint_loss =
            if (0.0..=1.0).contains(&ft) { 0.0 } else { (ft - 0.5) * (ft - 0.5) + penalty };
        rows_c.push(format!("{ft:.3},{target_loss:.4}"));
        rows_d.push(format!("{ft:.3},{constraint_loss:.4}"));
    }
    write_csv("fig3c_loss_f1.csv", "normalized_f1,loss", &rows_c);
    write_csv("fig3d_loss_f2.csv", "normalized_f2,loss", &rows_d);
    println!("(c)/(d): target loss is quadratic inside [0,1]; both terms jump by P = {penalty} outside.");

    // --- (e): univariate loss over x = #cores in [1, 48]. ---
    // F1 (lat) = max(100, 2400/x), F2 (cost) = min(24, x); x = 1 + 47*u.
    let f1: Arc<dyn ObjectiveModel> =
        Arc::new(FnModel::new(1, |u| (2400.0 / (1.0 + 47.0 * u[0])).max(100.0)));
    let f2: Arc<dyn ObjectiveModel> = Arc::new(FnModel::new(1, |u| (1.0 + 47.0 * u[0]).min(24.0)));
    let p1 = MooProblem::new(1, vec![f1, f2]);
    let co = CoProblem::constrained(0, vec![Bound::new(100.0, 200.0), Bound::new(8.0, 16.0)]);
    let mogd = Mogd::new(MogdConfig { penalty, ..Default::default() });
    let mut rows_e = Vec::new();
    println!("\n(e) loss over #cores (valid region: cores in [12, 16] -> F1 in [150,200], F2 in [12,16]):");
    for i in 0..=94 {
        let cores = 1.0 + 0.5 * i as f64;
        let u = (cores - 1.0) / 47.0;
        let loss = mogd.loss(&p1, &co, &[u]);
        rows_e.push(format!("{cores:.1},{loss:.4}"));
    }
    write_csv("fig3e_loss_cores.csv", "cores,loss", &rows_e);

    // --- (f): bivariate loss over x1 = #executors, x2 = #cores/executor. ---
    let f1: Arc<dyn ObjectiveModel> = Arc::new(FnModel::new(2, |u| {
        let execs = 1.0 + 23.0 * u[0];
        let cpe = 1.0 + 4.0 * u[1];
        (2400.0 / (execs * cpe).min(24.0)).max(100.0)
    }));
    let f2: Arc<dyn ObjectiveModel> = Arc::new(FnModel::new(2, |u| {
        let execs = 1.0 + 23.0 * u[0];
        let cpe = 1.0 + 4.0 * u[1];
        (execs * cpe).min(24.0)
    }));
    let p2 = MooProblem::new(2, vec![f1, f2]);
    let mut rows_f = Vec::new();
    for i in 0..=24 {
        for j in 0..=16 {
            let execs = 1.0 + i as f64 * (23.0 / 24.0);
            let cpe = 1.0 + j as f64 * 0.25;
            let u = [(execs - 1.0) / 23.0, (cpe - 1.0) / 4.0];
            let loss = mogd.loss(&p2, &co, &u);
            rows_f.push(format!("{execs:.2},{cpe:.2},{loss:.4}"));
        }
    }
    write_csv("fig3f_loss_exec_cores.csv", "executors,cores_per_executor,loss", &rows_f);

    // Show that minimizing this loss solves the CO problem.
    let sol = mogd.solve_and_report(&p2, &co);
    println!("\nMOGD solution of C_F1F2 on the bivariate models: {sol}");
}

trait Report {
    fn solve_and_report(&self, p: &MooProblem, co: &CoProblem) -> String;
}

impl Report for Mogd {
    fn solve_and_report(&self, p: &MooProblem, co: &CoProblem) -> String {
        use udao_core::solver::CoSolver;
        match self.solve(p, co).expect("solver runs") {
            Some(s) => format!(
                "F = ({:.1}, {:.1}) at x = ({:.3}, {:.3})",
                s.f[0], s.f[1], s.x[0], s.x[1]
            ),
            None => "infeasible".to_string(),
        }
    }
}
