//! Appendix Fig. 8 — streaming 2-D details on job 56: uncertain space vs
//! time for PF-AP/PF-AS/Evo/WS/NC, the WS/NC vs PF frontiers, the Evo
//! inconsistency across probe budgets, and the uncertain space of all 63
//! workloads under 1-second and 2-second constraints (PF-AP vs Evo).
//!
//! Run: `cargo run --release -p udao-bench --bin fig8 [-- --jobs N]`

use udao::ModelFamily;
use udao_baselines::evo::{nsga2, EvoConfig};
use udao_bench::{
    experiment_udao, frontier_rows, run_method, stream_problem, uncertainty_at, write_csv,
    Budgets, Method,
};
use udao_sparksim::objectives::StreamObjective;
use udao_sparksim::streaming_workloads;

const OBJ_2D: [StreamObjective; 2] = [StreamObjective::Latency, StreamObjective::Throughput];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(63);

    // --- Fig. 8(a): uncertain space vs time, job 56. ---
    println!("== Fig. 8(a): uncertain space vs time, job 56, 2-D ==");
    let udao = experiment_udao();
    let workloads = streaming_workloads();
    let job56 = &workloads[55];
    let p = stream_problem(&udao, job56, ModelFamily::Dnn, 100, &OBJ_2D);
    let (u, n) = udao_baselines::reference_box(&p, 56);
    let budgets = Budgets::default();
    let mut rows = Vec::new();
    let mut frontier_store = Vec::new();
    for m in [Method::PfAp, Method::PfAs, Method::Evo, Method::Ws, Method::Nc] {
        let run = run_method(m, &p, &budgets, &u, &n);
        println!(
            "{:>6}: first Pareto set after {:>6.2}s, final uncertainty {:5.1}%, {} points",
            m.label(),
            run.first_set_time,
            run.series.last().map(|(_, u)| *u).unwrap_or(100.0),
            run.frontier.len()
        );
        for (t, uv) in &run.series {
            rows.push(format!("{},{t:.4},{uv:.2}", m.label()));
        }
        frontier_store.push((m, run.frontier));
    }
    write_csv("fig8a_uncertainty.csv", "method,elapsed_s,uncertain_pct", &rows);

    // --- Fig. 8(b)/(c): WS+NC vs PF frontiers. ---
    for (m, frontier) in &frontier_store {
        let file = match m {
            Method::Ws => "fig8b_ws_frontier.csv",
            Method::Nc => "fig8b_nc_frontier.csv",
            Method::PfAp => "fig8c_pf_frontier.csv",
            _ => continue,
        };
        write_csv(file, "latency,neg_throughput", &frontier_rows(frontier));
    }

    // --- Fig. 8(d)/(e): Evo inconsistency on jobs 56 and 54. ---
    println!("\n== Fig. 8(d)/(e): Evo frontier inconsistency (jobs 56, 54) ==");
    for (job_idx, file) in [(55usize, "fig8d_evo_job56.csv"), (53, "fig8e_evo_job54.csv")] {
        let udao = experiment_udao();
        let w = &workloads[job_idx];
        let p = stream_problem(&udao, w, ModelFamily::Dnn, 100, &OBJ_2D);
        let mut rows = Vec::new();
        for probes in [300usize, 400, 500] {
            let run = nsga2(&p, probes, &EvoConfig::default());
            println!("  {}: {probes} probes -> {} points", w.id, run.frontier.len());
            for r in frontier_rows(&run.frontier) {
                rows.push(format!("{probes},{r}"));
            }
        }
        write_csv(file, "probes,latency,neg_throughput", &rows);
    }

    // --- Fig. 8(f): uncertain space under 1 s / 2 s across the fleet. ---
    println!("\n== Fig. 8(f): uncertainty under 1s / 2s constraints, {jobs} workloads ==");
    let mut cells: Vec<Vec<f64>> = vec![Vec::new(); 4]; // Evo@1, PF@1, Evo@2, PF@2
    for (wi, w) in workloads.iter().take(jobs).enumerate() {
        let udao = experiment_udao();
        let p = stream_problem(&udao, w, ModelFamily::Dnn, 60, &OBJ_2D);
        let (u, n) = udao_baselines::reference_box(&p, wi as u64);
        let evo = run_method(Method::Evo, &p, &budgets, &u, &n);
        let pf = run_method(Method::PfAp, &p, &budgets, &u, &n);
        cells[0].push(uncertainty_at(&evo.series, 1.0));
        cells[1].push(uncertainty_at(&pf.series, 1.0));
        cells[2].push(uncertainty_at(&evo.series, 2.0));
        cells[3].push(uncertainty_at(&pf.series, 2.0));
    }
    let labels = ["Evo (1s)", "PF-AP (1s)", "Evo (2s)", "PF-AP (2s)"];
    let mut rows = Vec::new();
    for (label, vals) in labels.iter().zip(&mut cells) {
        let med = udao_bench::median(vals);
        let done: usize = vals.iter().filter(|v| **v < 100.0).count();
        println!("  {label:<12} median uncertainty {med:5.1}%  ({done}/{} produced a set)", vals.len());
        rows.push(format!("{label},{med:.2},{done}"));
    }
    write_csv("fig8f_time_budget.csv", "method,median_uncertain_pct,jobs_with_set", &rows);
}
