//! SLO scheduler bench: interactive tail latency under a batch-class
//! flood, emitting `BENCH_scheduler.json`.
//!
//! Run: `cargo run --release -p udao-bench --bin bench_scheduler`
//! Fast sizing for CI smoke runs: `CHECK_FAST=1`.
//!
//! The workload is the serving engine's reason to exist: an interactive
//! tenant sharing the engine with a cheap batch flood at a 10:1
//! batch-to-interactive ratio. Phase one measures the interactive p99
//! with the engine otherwise idle; phase two repeats the same requests
//! while each interactive submission is preceded by ten batch-class
//! submissions into a small queue, so the batch quota is permanently
//! saturated. Strict class precedence plus per-class quotas must keep the
//! interactive class (a) admitted — at least 95% of submissions — and
//! (b) fast — loaded p99 within 3x of the unloaded p99 — while every
//! shed lands on the batch class.
//!
//! The binary validates its own output: the JSON is re-parsed and the
//! gates re-checked from the file, so a malformed report fails the run.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use udao::{
    BatchRequest, ModelFamily, ModelProvider, Priority, ResponseHandle, ServingEngine,
    ServingOptions, Udao,
};
use udao_core::Error;
use udao_model::server::{ModelKey, ModelServer};
use udao_sparksim::objectives::BatchObjective;
use udao_sparksim::{batch_workloads, ClusterSpec};

const OUT_PATH: &str = "BENCH_scheduler.json";
/// Simulated remote model-server fetch latency per solve; dominates the
/// per-request cost so OS jitter stays small relative to the 3x gate
/// (sleeps overlap across workers even on one core, compute does not).
const MODEL_DELAY: Duration = Duration::from_millis(40);
/// Batch submissions per interactive submission in the loaded phase.
const FLOOD_RATIO: usize = 10;
/// Loaded-phase queue depth: derived quotas are interactive 8 /
/// standard 6 / batch 4, so each 10-burst overflows the batch quota while
/// interactive headroom never fills.
const LOADED_QUEUE_DEPTH: usize = 8;
/// Unmeasured requests per phase before latencies count (worker spawn,
/// first scheduler pop, allocator warm-up).
const WARMUP_ROUNDS: usize = 3;

/// Model provider that simulates a slow remote model server.
struct SlowProvider {
    inner: Arc<ModelServer>,
    delay: Duration,
}

impl ModelProvider for SlowProvider {
    fn fetch(
        &self,
        key: &ModelKey,
    ) -> udao_core::Result<Option<Arc<dyn udao_core::ObjectiveModel>>> {
        std::thread::sleep(self.delay);
        self.inner.fetch(key)
    }
}

fn request(class: Priority) -> BatchRequest {
    // The flood is *cheap* batch work (a single frontier point); the
    // interactive tenant asks for a real frontier, so its own solve —
    // not the co-tenants' — dominates its latency budget.
    let points = if class == Priority::Batch { 1 } else { 6 };
    BatchRequest::new("q2-v0")
        .objective(BatchObjective::Latency)
        .objective(BatchObjective::CostCores)
        .points(points)
        .priority(class)
}

/// Small PF configuration so each solve is dominated by the model fetch.
fn quick_pf() -> (udao_core::pf::PfVariant, udao_core::pf::PfOptions) {
    (
        udao_core::pf::PfVariant::ApproxSequential,
        udao_core::pf::PfOptions {
            mogd: udao_core::mogd::MogdConfig {
                multistarts: 2,
                max_iters: 30,
                ..Default::default()
            },
            max_probes: 8,
            ..Default::default()
        },
    )
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    let n = sorted_ms.len();
    let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    sorted_ms[idx]
}

/// Submit one interactive request and wait it to completion, returning
/// the submit-to-response latency in milliseconds (the SLO the scheduler
/// protects, queue wait included).
fn timed_interactive(
    engine: &ServingEngine<BatchObjective>,
) -> Result<Option<f64>, String> {
    let submitted = Instant::now();
    match engine.submit(request(Priority::Interactive)) {
        Ok(handle) => {
            handle.wait().map_err(|e| format!("interactive solve: {e}"))?;
            Ok(Some(submitted.elapsed().as_secs_f64() * 1e3))
        }
        Err(Error::Shed { .. }) => Ok(None),
        Err(other) => Err(format!("interactive submit: {other}")),
    }
}

struct LoadedPhase {
    latencies_ms: Vec<f64>,
    interactive_admitted: u64,
    interactive_shed: u64,
    batch_admitted: u64,
    batch_shed: u64,
}

/// Loaded phase: before every interactive request, burst `FLOOD_RATIO`
/// batch-class submissions into the small queue. Batch handles are
/// collected and drained at the end so every admitted request is served.
fn run_loaded(udao: &Arc<Udao>, rounds: usize) -> Result<LoadedPhase, String> {
    let engine: ServingEngine<BatchObjective> = ServingEngine::start_with(
        Arc::clone(udao),
        ServingOptions::default().with_workers(2).with_queue_depth(LOADED_QUEUE_DEPTH),
    );
    let mut phase = LoadedPhase {
        latencies_ms: Vec::with_capacity(rounds),
        interactive_admitted: 0,
        interactive_shed: 0,
        batch_admitted: 0,
        batch_shed: 0,
    };
    let mut batch_handles: Vec<ResponseHandle> = Vec::new();
    // Unmeasured warm-up: worker spawn and first-pop costs stay out of
    // the tail.
    for _ in 0..WARMUP_ROUNDS {
        timed_interactive(&engine)?.ok_or("warm-up request must not shed")?;
    }
    for _ in 0..rounds {
        for _ in 0..FLOOD_RATIO {
            match engine.submit(request(Priority::Batch)) {
                Ok(handle) => {
                    phase.batch_admitted += 1;
                    batch_handles.push(handle);
                }
                Err(Error::Shed { class, .. }) => {
                    if class != Some(Priority::Batch) {
                        return Err(format!("batch shed reported class {class:?}"));
                    }
                    phase.batch_shed += 1;
                }
                Err(other) => return Err(format!("batch submit: {other}")),
            }
        }
        match timed_interactive(&engine)? {
            Some(ms) => {
                phase.interactive_admitted += 1;
                phase.latencies_ms.push(ms);
            }
            None => phase.interactive_shed += 1,
        }
    }
    for handle in batch_handles {
        handle.wait().map_err(|e| format!("batch solve: {e}"))?;
    }
    Ok(phase)
}

fn run() -> Result<(), String> {
    let fast = std::env::var("CHECK_FAST").is_ok_and(|v| v == "1");
    let rounds = if fast { 30 } else { 80 };

    let (variant, opts) = quick_pf();
    let builder = Udao::builder(ClusterSpec::paper_cluster()).pf(variant, opts);
    let server = builder.shared_model_server();
    let udao = builder
        .model_provider(Arc::new(SlowProvider { inner: server, delay: MODEL_DELAY }))
        .build()
        .map_err(|e| format!("build: {e}"))?;
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").ok_or("q2-v0 missing")?;
    udao.train_batch(q2, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    let udao = Arc::new(udao);

    // Warm-up solve so one-time costs don't land in the unloaded phase.
    udao.recommend_batch(&request(Priority::Standard)).map_err(|e| format!("warm-up: {e}"))?;

    // Phase one: unloaded interactive baseline.
    let engine: ServingEngine<BatchObjective> =
        ServingEngine::start_with(Arc::clone(&udao), ServingOptions::default().with_workers(2));
    let mut unloaded_ms = Vec::with_capacity(rounds);
    for _ in 0..WARMUP_ROUNDS {
        timed_interactive(&engine)?.ok_or("warm-up request must not shed")?;
    }
    for _ in 0..rounds {
        let ms = timed_interactive(&engine)?.ok_or("unloaded engine must not shed")?;
        unloaded_ms.push(ms);
    }
    drop(engine);
    unloaded_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let unloaded_p50 = percentile(&unloaded_ms, 0.50);
    let unloaded_p99 = percentile(&unloaded_ms, 0.99);
    println!("[bench] unloaded interactive: p50 {unloaded_p50:.1} ms, p99 {unloaded_p99:.1} ms");

    // Phase two: the same interactive stream under a 10:1 batch flood.
    let mut loaded = run_loaded(&udao, rounds)?;
    loaded.latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    if loaded.latencies_ms.is_empty() {
        return Err("no interactive request survived the flood".into());
    }
    let loaded_p50 = percentile(&loaded.latencies_ms, 0.50);
    let loaded_p99 = percentile(&loaded.latencies_ms, 0.99);
    let p99_ratio = loaded_p99 / unloaded_p99;
    let admitted_frac = loaded.interactive_admitted as f64
        / (loaded.interactive_admitted + loaded.interactive_shed) as f64;
    println!(
        "[bench] loaded interactive: p50 {loaded_p50:.1} ms, p99 {loaded_p99:.1} ms \
         ({p99_ratio:.2}x unloaded; gate: <= 3x)"
    );
    println!(
        "[bench] admissions: interactive {}/{} ({:.1}%; gate: >= 95%), batch {} admitted / {} shed",
        loaded.interactive_admitted,
        loaded.interactive_admitted + loaded.interactive_shed,
        admitted_frac * 100.0,
        loaded.batch_admitted,
        loaded.batch_shed,
    );

    // The overload must be real (batch quota overflowed), absorbed by the
    // batch class alone, and invisible to the interactive tail.
    let gate = p99_ratio <= 3.0
        && admitted_frac >= 0.95
        && loaded.interactive_shed == 0
        && loaded.batch_shed > 0;

    let report = serde_json::json!({
        "workload": "q2-v0",
        "rounds": rounds,
        "flood_ratio": FLOOD_RATIO,
        "model_delay_ms": MODEL_DELAY.as_millis() as u64,
        "loaded_queue_depth": LOADED_QUEUE_DEPTH,
        "unloaded_p50_ms": unloaded_p50,
        "unloaded_p99_ms": unloaded_p99,
        "loaded_p50_ms": loaded_p50,
        "loaded_p99_ms": loaded_p99,
        "p99_ratio": p99_ratio,
        "interactive_admitted": loaded.interactive_admitted,
        "interactive_shed": loaded.interactive_shed,
        "interactive_admitted_frac": admitted_frac,
        "batch_admitted": loaded.batch_admitted,
        "batch_shed": loaded.batch_shed,
        "scheduler_gate": gate,
    });
    let mut f = std::fs::File::create(OUT_PATH).map_err(|e| format!("create {OUT_PATH}: {e}"))?;
    let rendered =
        serde_json::to_string_pretty(&report).map_err(|e| format!("render report: {e}"))?;
    f.write_all(rendered.as_bytes()).map_err(|e| format!("write {OUT_PATH}: {e}"))?;
    println!("[bench] wrote {OUT_PATH}");

    // Self-validate: the gate decision must survive a round-trip through
    // the file, so downstream checks can trust the JSON alone.
    let raw = std::fs::read_to_string(OUT_PATH).map_err(|e| format!("read back: {e}"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("re-parse: {e}"))?;
    let ratio = parsed
        .get("p99_ratio")
        .and_then(serde_json::Value::as_f64)
        .ok_or("p99_ratio missing from report")?;
    let frac = parsed
        .get("interactive_admitted_frac")
        .and_then(serde_json::Value::as_f64)
        .ok_or("interactive_admitted_frac missing from report")?;
    let shed_interactive = parsed
        .get("interactive_shed")
        .and_then(serde_json::Value::as_u64)
        .ok_or("interactive_shed missing from report")?;
    let shed_batch = parsed
        .get("batch_shed")
        .and_then(serde_json::Value::as_u64)
        .ok_or("batch_shed missing from report")?;
    if ratio > 3.0 {
        return Err(format!("scheduler gate failed: loaded p99 is {ratio:.2}x unloaded (> 3x)"));
    }
    if frac < 0.95 {
        return Err(format!(
            "scheduler gate failed: only {:.1}% of interactive requests admitted (< 95%)",
            frac * 100.0
        ));
    }
    if shed_interactive != 0 {
        return Err(format!(
            "scheduler gate failed: {shed_interactive} interactive request(s) shed; \
             the batch class must absorb all shedding"
        ));
    }
    if shed_batch == 0 {
        return Err("scheduler gate vacuous: the flood never overflowed the batch quota".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_scheduler failed: {e}");
            ExitCode::FAILURE
        }
    }
}
