//! Model-lifecycle bench: hot-swap latency and stale-serve accounting
//! under live serving load, emitting `BENCH_lifecycle.json`.
//!
//! Run: `cargo run --release -p udao-bench --bin bench_lifecycle`
//! Fast sizing for CI smoke runs: `CHECK_FAST=1`.
//!
//! A retrain mill continuously republishes the learned latency model while
//! a 4-worker serving engine answers requests against it. The bench
//! measures the registry's swap latency (snapshot → train → publish, from
//! the `model.swap_seconds` histogram), counts the swaps that landed, and
//! gates on the lifecycle safety invariant: **zero** stale serves — no
//! request may ever observe an older version than the registry had
//! published when its solve leased (`model.stale_served == 0`), and every
//! report must pin exactly one version for the learned key.
//!
//! The binary validates its own output: the JSON is re-parsed and the gate
//! re-checked from the file, so a malformed report fails the run.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use udao::{BatchRequest, ClassQuotas, ModelFamily, ServingEngine, ServingOptions, Udao};
use udao_model::dataset::Dataset;
use udao_model::server::{ModelKey, ModelServer};
use udao_sparksim::objectives::BatchObjective;
use udao_sparksim::{batch_workloads, ClusterSpec};
use udao_telemetry::names;

const OUT_PATH: &str = "BENCH_lifecycle.json";
const WORKERS: usize = 4;
/// Trace-archive cap: the mill stops growing the archive here so GP
/// refits (and thus swap latency) stay representative, not ever-slower.
const ARCHIVE_CAP: usize = 120;

fn request() -> BatchRequest {
    BatchRequest::new("q2-v0")
        .objective(BatchObjective::Latency)
        .objective(BatchObjective::CostCores)
        .points(3)
}

fn quick_pf() -> (udao_core::pf::PfVariant, udao_core::pf::PfOptions) {
    (
        udao_core::pf::PfVariant::ApproxSequential,
        udao_core::pf::PfOptions {
            mogd: udao_core::mogd::MogdConfig {
                multistarts: 2,
                max_iters: 30,
                ..Default::default()
            },
            max_probes: 8,
            ..Default::default()
        },
    )
}

/// A small drifting trace batch for the retrain mill.
fn mill_batch(dim: usize, round: u64) -> Dataset {
    let slope = 4.5 + (round % 3) as f64 / 2.0;
    let x: Vec<Vec<f64>> = (0..2u64)
        .map(|p| {
            (0..dim)
                .map(|j| ((round.wrapping_mul(31) + p * 7 + j as u64 * 13) % 97) as f64 / 96.0)
                .collect()
        })
        .collect();
    let y: Vec<f64> = x.iter().map(|r| 2.0 + slope * r.iter().sum::<f64>() / dim as f64).collect();
    Dataset::new(x, y)
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    let n = sorted_ms.len();
    let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    sorted_ms[idx]
}

fn run() -> Result<(), String> {
    let fast = std::env::var("CHECK_FAST").is_ok_and(|v| v == "1");
    let requests = if fast { 32 } else { 120 };

    let (variant, opts) = quick_pf();
    let udao = Udao::builder(ClusterSpec::paper_cluster())
        .pf(variant, opts)
        .build()
        .map_err(|e| format!("build: {e}"))?;
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").ok_or("q2-v0 missing")?;
    udao.train_batch(q2, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    let server: Arc<ModelServer> = udao.shared_model_server();
    let key = ModelKey::new("q2-v0", "latency");
    let dim = server.lease(&key).ok_or("latency model missing after training")?.model.dim();
    let udao = Arc::new(udao);

    // Warm-up solve so one-time costs stay out of the measured window.
    udao.recommend_batch(&request()).map_err(|e| format!("warm-up: {e}"))?;

    let before = udao_telemetry::global().snapshot();

    // The retrain mill: continuous ingest → full refit → hot-swap while
    // the engine serves.
    let stop = Arc::new(AtomicBool::new(false));
    let mill = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let key = key.clone();
        std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let batch = if server.trace_count(&key) < ARCHIVE_CAP {
                    mill_batch(dim, round)
                } else {
                    Dataset::default()
                };
                server.retrain_now(&key, &batch);
                round += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let mut engine: ServingEngine<BatchObjective> = ServingEngine::start_with(
        Arc::clone(&udao),
        ServingOptions::default()
            .with_workers(WORKERS)
            .with_queue_depth(requests)
            // The whole burst is one (standard) class; the derived
            // per-class quotas would shed its tail.
            .with_class_quotas(ClassQuotas {
                interactive: requests,
                standard: requests,
                batch: requests,
            }),
    );
    let started = Instant::now();
    let handles: Vec<_> = (0..requests)
        .map(|i| engine.submit(request()).map_err(|e| format!("submit {i}: {e}")))
        .collect::<Result<_, _>>()?;
    let mut latencies_ms = Vec::with_capacity(requests);
    let mut stale_in_reports = 0u64;
    let mut versions = std::collections::BTreeSet::new();
    for (i, handle) in handles.into_iter().enumerate() {
        let rec = handle.wait().map_err(|e| format!("solve {i}: {e}"))?;
        stale_in_reports += rec.report.stale_served;
        if rec.report.model_versions.len() != 1 {
            return Err(format!(
                "request {i} pinned {} learned models, expected exactly 1",
                rec.report.model_versions.len()
            ));
        }
        versions.insert(rec.report.model_versions[0].1);
        latencies_ms.push(rec.report.total_seconds * 1e3);
    }
    let elapsed = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    mill.join().map_err(|_| "retrain mill panicked".to_string())?;
    engine.shutdown();

    let delta = udao_telemetry::global().snapshot().delta_since(&before);
    let swaps = delta.counter(names::MODEL_SWAPS);
    let stale_served = delta.counter(names::MODEL_STALE_SERVED) + stale_in_reports;
    let swap_hist = delta.histogram(names::MODEL_SWAP_SECONDS);
    let swap_ms_mean = swap_hist.map(|h| h.mean() * 1e3).unwrap_or(0.0);
    let swap_ms_p95 = swap_hist.and_then(|h| h.quantile(0.95)).map(|s| s * 1e3).unwrap_or(0.0);

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let gate = stale_served == 0 && swaps >= 1;
    println!(
        "[bench] {requests} requests / {WORKERS} workers over {swaps} hot-swaps: \
         {:.1} req/s, swap mean {swap_ms_mean:.2} ms, swap p95 {swap_ms_p95:.2} ms, \
         {} distinct versions served, stale serves {stale_served} (gate: 0)",
        requests as f64 / elapsed,
        versions.len(),
    );

    let report = serde_json::json!({
        "workload": "q2-v0",
        "requests": requests,
        "workers": WORKERS,
        "swaps": swaps,
        "swap_ms_mean": swap_ms_mean,
        "swap_ms_p95": swap_ms_p95,
        "stale_served": stale_served,
        "distinct_versions_served": versions.len(),
        "request_p50_ms": percentile(&latencies_ms, 0.50),
        "request_p95_ms": percentile(&latencies_ms, 0.95),
        "lifecycle_gate": gate,
    });
    let mut f = std::fs::File::create(OUT_PATH).map_err(|e| format!("create {OUT_PATH}: {e}"))?;
    let rendered =
        serde_json::to_string_pretty(&report).map_err(|e| format!("render report: {e}"))?;
    f.write_all(rendered.as_bytes()).map_err(|e| format!("write {OUT_PATH}: {e}"))?;
    println!("[bench] wrote {OUT_PATH}");

    // Self-validate: the gate decision must survive a round-trip through
    // the file, so downstream checks can trust the JSON alone.
    let raw = std::fs::read_to_string(OUT_PATH).map_err(|e| format!("read back: {e}"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("re-parse: {e}"))?;
    let recorded_stale = parsed
        .get("stale_served")
        .and_then(serde_json::Value::as_u64)
        .ok_or("stale_served missing from report")?;
    let recorded_swaps = parsed
        .get("swaps")
        .and_then(serde_json::Value::as_u64)
        .ok_or("swaps missing from report")?;
    if recorded_stale != 0 {
        return Err(format!("lifecycle gate failed: {recorded_stale} stale serves (must be 0)"));
    }
    if recorded_swaps < 1 {
        return Err("lifecycle gate failed: the mill never swapped a model".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_lifecycle failed: {e}");
            ExitCode::FAILURE
        }
    }
}
