//! Fig. 2 — middle-point-probe geometry on the TPCx-BB Q2 running example:
//! the (latency, cost) objective space with Utopia (100, 8) and Nadir
//! (300, 24), the first middle-point probe, and the iterative shrinkage of
//! the uncertain space.
//!
//! Run: `cargo run --release -p udao-bench --bin fig2_probe`

use std::sync::Arc;
use udao_bench::write_csv;
use udao_core::objective::{FnModel, ObjectiveModel};
use udao_core::pf::{PfOptions, PfVariant, ProgressiveFrontier};
use udao_core::MooProblem;

fn main() {
    // A smooth model pair whose frontier runs from (100, 24) to (300, 8) —
    // the Fig. 2 geometry.
    let lat: Arc<dyn ObjectiveModel> =
        Arc::new(FnModel::new(2, |x| 100.0 + 200.0 * (1.0 - x[0]) + 30.0 * x[1]));
    let cost: Arc<dyn ObjectiveModel> =
        Arc::new(FnModel::new(2, |x| 8.0 + 16.0 * x[0] + 8.0 * x[1]));
    let problem = MooProblem::new(2, vec![lat, cost]);

    let mut opts = PfOptions::default();
    opts.mogd.alpha = 0.0;
    let run = ProgressiveFrontier::new(PfVariant::ApproxSequential, opts)
        .solve(&problem, 6)
        .expect("probe run");

    println!("Fig. 2 — iterative middle point probes on the Q2 geometry");
    println!("Utopia fU = ({:.0}, {:.0})", run.utopia[0], run.utopia[1]);
    println!("Nadir  fN = ({:.0}, {:.0})", run.nadir[0], run.nadir[1]);
    println!("\nprobe sequence (uncertain space after each probe):");
    let mut rows = Vec::new();
    for s in &run.history {
        println!(
            "  probe {:>2}: frontier {:>2} points, uncertain {:5.1}%",
            s.probes,
            s.frontier_len,
            s.uncertain_frac * 100.0
        );
        rows.push(format!("{},{},{:.4}", s.probes, s.frontier_len, s.uncertain_frac * 100.0));
    }
    write_csv("fig2_uncertainty.csv", "probes,frontier_len,uncertain_pct", &rows);

    println!("\nPareto points found (Fig. 2(b) dots):");
    let mut pts: Vec<_> = run.frontier.iter().map(|p| (p.f[0], p.f[1])).collect();
    pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rows: Vec<String> = pts.iter().map(|(a, b)| format!("{a:.2},{b:.2}")).collect();
    for (a, b) in &pts {
        println!("  f = ({a:7.2}, {b:6.2})");
    }
    write_csv("fig2_frontier.csv", "latency,cost_cores", &rows);
}
