//! Fig. 5 — comparative MOO results on the streaming workloads: 2-D
//! (latency, throughput) and 3-D (+ cost) objective spaces, job 54.
//!
//! Sub-figures: `abc` WS/NC/PF 3-D frontiers; `d` uncertain space vs time
//! for all six methods (2-D); `ef` uncertain-space thresholds across the
//! 63-workload population in 2-D and 3-D.
//!
//! Run: `cargo run --release -p udao-bench --bin fig5 -- [abc|d|ef|all] [--jobs N]`

use udao::ModelFamily;
use udao_bench::{
    experiment_udao, frontier_rows, median, run_method, stream_problem, uncertainty_at,
    write_csv, Budgets, Method,
};
use udao_core::MooProblem;
use udao_sparksim::objectives::StreamObjective;
use udao_sparksim::streaming_workloads;

const OBJ_2D: [StreamObjective; 2] = [StreamObjective::Latency, StreamObjective::Throughput];
const OBJ_3D: [StreamObjective; 3] =
    [StreamObjective::Latency, StreamObjective::Throughput, StreamObjective::CostCores];

fn job_problem(index: usize, objectives: &[StreamObjective]) -> (MooProblem, Vec<f64>, Vec<f64>) {
    let udao = experiment_udao();
    let workloads = streaming_workloads();
    let job = &workloads[index];
    let p = stream_problem(&udao, job, ModelFamily::Dnn, 100, objectives);
    let (u, n) = udao_baselines::reference_box(&p, index as u64);
    (p, u, n)
}

fn fig5abc() {
    println!("== Fig. 5(a)-(c): 3-D frontiers of WS, NC, PF-AP (job 54) ==");
    let (p, u, n) = job_problem(53, &OBJ_3D);
    let budgets = Budgets::single(20);
    for (m, file) in [
        (Method::Ws, "fig5a_ws_frontier_3d.csv"),
        (Method::Nc, "fig5b_nc_frontier_3d.csv"),
        (Method::PfAp, "fig5c_pf_frontier_3d.csv"),
    ] {
        let t0 = std::time::Instant::now();
        let run = run_method(m, &p, &budgets, &u, &n);
        println!(
            "{:>6}: {:>2} frontier points in {:>6.2}s",
            m.label(),
            run.frontier.len(),
            t0.elapsed().as_secs_f64()
        );
        write_csv(file, "latency,neg_throughput,cost_cores", &frontier_rows(&run.frontier));
    }
}

fn fig5d() {
    println!("== Fig. 5(d): uncertain space vs time, job 54, 2-D, all methods ==");
    let (p, u, n) = job_problem(53, &OBJ_2D);
    let budgets = Budgets::default();
    let mut rows = Vec::new();
    for m in [Method::PfAp, Method::Evo, Method::Ws, Method::Nc, Method::Qehvi, Method::Pesm] {
        let run = run_method(m, &p, &budgets, &u, &n);
        println!(
            "{:>6}: first Pareto set after {:>6.2}s, final uncertainty {:5.1}%",
            m.label(),
            run.first_set_time,
            run.series.last().map(|(_, u)| *u).unwrap_or(100.0)
        );
        for (t, uv) in &run.series {
            rows.push(format!("{},{t:.4},{uv:.2}", m.label()));
        }
    }
    write_csv("fig5d_uncertainty.csv", "method,elapsed_s,uncertain_pct", &rows);
}

fn fig5ef(jobs: usize, objectives: &[StreamObjective], tag: &str) {
    println!("== Fig. 5({tag}): uncertain space across {jobs} streaming workloads ({}-D) ==", objectives.len());
    let thresholds = [0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0];
    let methods = [Method::PfAp, Method::Evo, Method::Qehvi, Method::Nc];
    let workloads = streaming_workloads();
    let mut per_method: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::new(); thresholds.len()]; methods.len()];
    let budgets = Budgets { sizes: vec![10, 15], ..Default::default() };
    for (wi, w) in workloads.iter().take(jobs).enumerate() {
        let udao = experiment_udao();
        let p = stream_problem(&udao, w, ModelFamily::Dnn, 60, objectives);
        let (u, n) = udao_baselines::reference_box(&p, wi as u64);
        for (mi, m) in methods.iter().enumerate() {
            let run = run_method(*m, &p, &budgets, &u, &n);
            for (ti, t) in thresholds.iter().enumerate() {
                per_method[mi][ti].push(uncertainty_at(&run.series, *t));
            }
        }
        if (wi + 1) % 10 == 0 {
            eprintln!("  ... {}/{jobs} workloads", wi + 1);
        }
    }
    println!("median uncertain space (%) at elapsed-time thresholds:");
    print!("{:>8}", "method");
    for t in thresholds {
        print!("{t:>8}");
    }
    println!();
    let mut rows = Vec::new();
    for (mi, m) in methods.iter().enumerate() {
        print!("{:>8}", m.label());
        let mut cells = Vec::new();
        for vals in per_method[mi].iter_mut() {
            let md = median(vals);
            print!("{md:>8.1}");
            cells.push(format!("{md:.2}"));
        }
        println!();
        rows.push(format!("{},{}", m.label(), cells.join(",")));
    }
    write_csv(
        &format!("fig5{tag}_population.csv"),
        "method,u_at_0.05s,u_at_0.1s,u_at_0.2s,u_at_0.5s,u_at_1s,u_at_2s,u_at_5s,u_at_10s",
        &rows,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(63);
    match which {
        "abc" => fig5abc(),
        "d" => fig5d(),
        "e" => fig5ef(jobs, &OBJ_2D, "e"),
        "f" => fig5ef(jobs, &OBJ_3D, "f"),
        "ef" => {
            fig5ef(jobs, &OBJ_2D, "e");
            fig5ef(jobs, &OBJ_3D, "f");
        }
        _ => {
            fig5abc();
            fig5d();
            fig5ef(jobs, &OBJ_2D, "e");
            fig5ef(jobs, &OBJ_3D, "f");
        }
    }
}
