//! Frontier-cache bench: exact-hit serving latency versus cold solves and
//! warm-started near hits versus cold solves, emitting `BENCH_cache.json`.
//!
//! Run: `cargo run --release -p udao-bench --bin bench_cache`
//! Fast sizing for CI smoke runs: `CHECK_FAST=1`.
//!
//! Each round measures one paired triple on the same trained models:
//! a **cold** solve against an empty cache (miss + insert), an **exact
//! hit** repeat of the identical request (served straight from the cached
//! frontier), and a **warm-started near hit** (same key, different point
//! count) next to a cold control solve of the same request on an
//! identically-trained cacheless instance. Gates: the cache actually
//! serves (`cache.served > 0`), exact hits answer at least 10x faster
//! than cold solves at the median, and warm-started solves are no slower
//! than their cold controls while keeping frontier hypervolume within 2%.
//!
//! The binary validates its own output: the JSON is re-parsed and the
//! gates re-checked from the file, so a malformed report fails the run.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use udao::{BatchRequest, FrontierCache, ModelFamily, Udao};
use udao_core::pareto::{hypervolume, ParetoPoint};
use udao_sparksim::objectives::BatchObjective;
use udao_sparksim::{batch_workloads, ClusterSpec};
use udao_telemetry::names;

const OUT_PATH: &str = "BENCH_cache.json";
/// Exact-hit latency must sit at least this far below cold solves.
const HIT_SPEEDUP_GATE: f64 = 10.0;
/// Warm-started frontiers must keep at least this hypervolume fraction.
const HV_GATE: f64 = 0.98;

fn request(points: usize) -> BatchRequest {
    BatchRequest::new("q2-v0")
        .objective(BatchObjective::Latency)
        .objective(BatchObjective::CostCores)
        .points(points)
}

fn quick_pf() -> (udao_core::pf::PfVariant, udao_core::pf::PfOptions) {
    (
        udao_core::pf::PfVariant::ApproxSequential,
        udao_core::pf::PfOptions {
            mogd: udao_core::mogd::MogdConfig {
                multistarts: 2,
                max_iters: 30,
                ..Default::default()
            },
            max_probes: 8,
            ..Default::default()
        },
    )
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    let n = sorted_ms.len();
    let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    sorted_ms[idx]
}

fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    v
}

/// Hypervolume of both frontiers against a shared padded envelope, so the
/// warm and cold runs are scored on one scale.
fn hv_ratio(warm: &[ParetoPoint], cold: &[ParetoPoint]) -> Result<f64, String> {
    if warm.is_empty() || cold.is_empty() {
        return Err("empty frontier in hypervolume comparison".into());
    }
    let k = warm[0].f.len();
    let mut utopia = vec![f64::INFINITY; k];
    let mut nadir = vec![f64::NEG_INFINITY; k];
    for p in warm.iter().chain(cold) {
        for (j, v) in p.f.iter().enumerate() {
            utopia[j] = utopia[j].min(*v);
            nadir[j] = nadir[j].max(*v);
        }
    }
    for j in 0..k {
        let pad = (nadir[j] - utopia[j]).abs().max(1e-9) * 0.05;
        utopia[j] -= pad;
        nadir[j] += pad;
    }
    let fs = |frontier: &[ParetoPoint]| -> Vec<Vec<f64>> {
        frontier.iter().map(|p| p.f.clone()).collect()
    };
    let hv_cold = hypervolume(&fs(cold), &utopia, &nadir);
    if hv_cold <= 0.0 {
        return Err("cold frontier has zero hypervolume".into());
    }
    Ok(hypervolume(&fs(warm), &utopia, &nadir) / hv_cold)
}

fn run() -> Result<(), String> {
    let fast = std::env::var("CHECK_FAST").is_ok_and(|v| v == "1");
    let rounds = if fast { 6 } else { 24 };

    let (variant, opts) = quick_pf();
    let udao = Udao::builder(ClusterSpec::paper_cluster())
        .pf(variant, opts)
        .frontier_cache(64)
        .build()
        .map_err(|e| format!("build: {e}"))?;
    let (variant, opts) = quick_pf();
    // Identically trained cacheless control: deterministic seeding makes
    // its cold solves exactly what the cached instance would produce.
    let control = Udao::builder(ClusterSpec::paper_cluster())
        .pf(variant, opts)
        .build()
        .map_err(|e| format!("control build: {e}"))?;
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").ok_or("q2-v0 missing")?;
    udao.train_batch(q2, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    control.train_batch(q2, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    let cache: &Arc<FrontierCache> = udao.frontier_cache().ok_or("cache not enabled")?;

    // Warm-up solves keep one-time costs out of the measured rounds.
    udao.recommend_batch(&request(3)).map_err(|e| format!("warm-up: {e}"))?;
    control.recommend_batch(&request(3)).map_err(|e| format!("control warm-up: {e}"))?;

    let before = udao_telemetry::global().snapshot();
    let mut cold_ms = Vec::with_capacity(rounds);
    let mut hit_ms = Vec::with_capacity(rounds);
    let mut warm_ms = Vec::with_capacity(rounds);
    let mut cold_ref_ms = Vec::with_capacity(rounds);
    let mut served = 0u64;
    let mut warm_starts = 0u64;
    let mut hv_min = f64::INFINITY;
    for round in 0..rounds {
        cache.invalidate_all();
        let cold = udao.recommend_batch(&request(5)).map_err(|e| format!("cold {round}: {e}"))?;
        if cold.report.cache_misses != 1 {
            return Err(format!("round {round}: cold solve was not a miss"));
        }
        cold_ms.push(cold.report.total_seconds * 1e3);

        let hit = udao.recommend_batch(&request(5)).map_err(|e| format!("hit {round}: {e}"))?;
        if hit.report.cache_served != 1 {
            return Err(format!("round {round}: repeat was not served from the cache"));
        }
        served += hit.report.cache_served;
        hit_ms.push(hit.report.total_seconds * 1e3);

        // Near hit: same key, different point count → warm-started solve.
        let warm = udao.recommend_batch(&request(4)).map_err(|e| format!("warm {round}: {e}"))?;
        if warm.report.cache_warm_starts != 1 {
            return Err(format!("round {round}: near hit did not warm-start"));
        }
        warm_starts += warm.report.cache_warm_starts;
        warm_ms.push(warm.report.total_seconds * 1e3);

        let cold_ref =
            control.recommend_batch(&request(4)).map_err(|e| format!("control {round}: {e}"))?;
        cold_ref_ms.push(cold_ref.report.total_seconds * 1e3);
        hv_min = hv_min.min(hv_ratio(&warm.frontier, &cold_ref.frontier)?);
    }
    let delta = udao_telemetry::global().snapshot().delta_since(&before);

    let cold_ms = sorted(cold_ms);
    let hit_ms = sorted(hit_ms);
    let warm_ms = sorted(warm_ms);
    let cold_ref_ms = sorted(cold_ref_ms);
    let cold_p50 = percentile(&cold_ms, 0.50);
    let hit_p50 = percentile(&hit_ms, 0.50);
    let warm_p50 = percentile(&warm_ms, 0.50);
    let cold_ref_p50 = percentile(&cold_ref_ms, 0.50);
    let speedup = cold_p50 / hit_p50.max(1e-9);
    let warm_beats_cold = warm_p50 <= cold_ref_p50;
    let gate =
        served > 0 && speedup >= HIT_SPEEDUP_GATE && warm_beats_cold && hv_min >= HV_GATE;
    println!(
        "[bench] {rounds} rounds: cold p50 {cold_p50:.3} ms, exact-hit p50 {hit_p50:.4} ms \
         ({speedup:.1}x, gate {HIT_SPEEDUP_GATE}x), warm p50 {warm_p50:.3} ms vs cold control \
         {cold_ref_p50:.3} ms, hv min {hv_min:.4} (gate {HV_GATE}), served {served}, \
         warm starts {warm_starts}"
    );

    let report = serde_json::json!({
        "workload": "q2-v0",
        "rounds": rounds,
        "cache_capacity": cache.capacity(),
        "served": served,
        "warm_starts": warm_starts,
        "inserts": delta.counter(names::CACHE_INSERTS),
        "invalidations": delta.counter(names::CACHE_INVALIDATIONS),
        "cold_p50_ms": cold_p50,
        "cold_p95_ms": percentile(&cold_ms, 0.95),
        "hit_p50_ms": hit_p50,
        "hit_p95_ms": percentile(&hit_ms, 0.95),
        "warm_p50_ms": warm_p50,
        "cold_control_p50_ms": cold_ref_p50,
        "hit_speedup": speedup,
        "hit_speedup_gate": HIT_SPEEDUP_GATE,
        "warm_beats_cold": warm_beats_cold,
        "hv_min_ratio": hv_min,
        "hv_gate": HV_GATE,
        "cache_gate": gate,
    });
    let mut f = std::fs::File::create(OUT_PATH).map_err(|e| format!("create {OUT_PATH}: {e}"))?;
    let rendered =
        serde_json::to_string_pretty(&report).map_err(|e| format!("render report: {e}"))?;
    f.write_all(rendered.as_bytes()).map_err(|e| format!("write {OUT_PATH}: {e}"))?;
    println!("[bench] wrote {OUT_PATH}");

    // Self-validate: the gate decision must survive a round-trip through
    // the file, so downstream checks can trust the JSON alone.
    let raw = std::fs::read_to_string(OUT_PATH).map_err(|e| format!("read back: {e}"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("re-parse: {e}"))?;
    let field = |name: &str| -> Result<f64, String> {
        parsed.get(name).and_then(serde_json::Value::as_f64).ok_or(format!("{name} missing"))
    };
    if field("served")? < 1.0 {
        return Err("cache gate failed: no request was ever served from the cache".into());
    }
    if field("hit_speedup")? < HIT_SPEEDUP_GATE {
        return Err(format!(
            "cache gate failed: exact hits only {:.1}x faster than cold (need {HIT_SPEEDUP_GATE}x)",
            field("hit_speedup")?
        ));
    }
    if !matches!(parsed.get("warm_beats_cold"), Some(serde_json::Value::Bool(true))) {
        return Err(format!(
            "cache gate failed: warm-started p50 {warm_p50:.3} ms did not beat cold {cold_ref_p50:.3} ms"
        ));
    }
    if field("hv_min_ratio")? < HV_GATE {
        return Err(format!(
            "cache gate failed: warm frontier hypervolume ratio {hv_min:.4} below {HV_GATE}"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_cache failed: {e}");
            ExitCode::FAILURE
        }
    }
}
