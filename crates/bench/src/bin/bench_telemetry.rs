//! Telemetry bench smoke: run one instrumented recommendation and emit
//! `BENCH_telemetry.json` with the per-request solve report — the same
//! fields `Recommendation::report` exposes (MOGD iterations, PF probes,
//! model inferences, per-stage wall-clock).
//!
//! Run: `cargo run --release -p udao-bench --bin bench_telemetry`
//!
//! The binary validates its own output (required fields present and
//! non-zero, JSON re-parses) and exits non-zero on any miss, so CI can use
//! it as a telemetry end-to-end gate.

use std::io::Write as _;
use std::process::ExitCode;
use udao::{BatchRequest, ModelFamily, Udao};
use udao_core::mogd::MogdConfig;
use udao_core::pf::{PfOptions, PfVariant};
use udao_sparksim::objectives::BatchObjective;
use udao_sparksim::{batch_workloads, ClusterSpec};

const OUT_PATH: &str = "BENCH_telemetry.json";

fn run() -> Result<(), String> {
    let udao = Udao::builder(ClusterSpec::paper_cluster())
        .pf(
            PfVariant::ApproxSequential,
            PfOptions {
                mogd: MogdConfig {
                    multistarts: 4,
                    max_iters: 60,
                    alpha: 1.0,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .build()
        .map_err(|e| format!("builder: {e}"))?;
    let workloads = batch_workloads();
    let q2 = workloads
        .iter()
        .find(|w| w.id == "q2-v0")
        .ok_or("workload q2-v0 missing")?;
    udao.train_batch(q2, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    let rec = udao
        .recommend_batch(
            &BatchRequest::new("q2-v0")
                .objective(BatchObjective::Latency)
                .objective(BatchObjective::CostCores)
                .weights(vec![0.5, 0.5])
                .points(8),
        )
        .map_err(|e| format!("recommend: {e}"))?;

    let json = serde_json::to_string_pretty(&rec.report.to_value())
        .map_err(|e| format!("serialize report: {e}"))?;
    let mut f = std::fs::File::create(OUT_PATH).map_err(|e| format!("create {OUT_PATH}: {e}"))?;
    f.write_all(json.as_bytes())
        .and_then(|()| f.write_all(b"\n"))
        .map_err(|e| format!("write {OUT_PATH}: {e}"))?;
    println!("[bench] wrote {OUT_PATH}");

    // Self-validate: re-read, re-parse, check the acceptance fields.
    let raw = std::fs::read_to_string(OUT_PATH).map_err(|e| format!("read back: {e}"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("re-parse: {e}"))?;
    let field = |name: &str| -> Result<u64, String> {
        parsed
            .get(name)
            .and_then(serde_json::Value::as_u64)
            .ok_or_else(|| format!("field {name} missing or not an integer"))
    };
    for name in ["mogd_iterations", "pf_probes", "model_inferences"] {
        let v = field(name)?;
        if v == 0 {
            return Err(format!("field {name} is zero — telemetry not flowing"));
        }
        println!("[bench] {name} = {v}");
    }
    let stages = parsed
        .get("stages")
        .and_then(serde_json::Value::as_array)
        .ok_or("field stages missing or not an array")?;
    if stages.is_empty() {
        return Err("no stage wall-clock recorded".into());
    }
    for s in stages {
        let path = s.get("path").and_then(serde_json::Value::as_str).unwrap_or("?");
        let secs = s.get("seconds").and_then(serde_json::Value::as_f64).unwrap_or(-1.0);
        if secs < 0.0 {
            return Err(format!("stage {path} has no seconds field"));
        }
        println!("[bench] stage {path} = {secs:.6}s");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_telemetry failed: {e}");
            ExitCode::FAILURE
        }
    }
}
