//! Per-stage tuning bench: the DAG-ordered coordinate-descent solver
//! against joint MOGD over the concatenated space, and per-stage
//! configurations against the best single global configuration, emitting
//! `BENCH_stages.json`.
//!
//! Run: `cargo run --release -p udao-bench --bin bench_stages`
//! Fast sizing for CI smoke runs: `CHECK_FAST=1`.
//!
//! The workload is the heterogeneous diamond fixture from
//! `udao_sparksim::stages`: per-stage optima spread across the knob range
//! and a critical path that dominates total work, so per-stage tuning has
//! real room over a single shared configuration, with every composed
//! optimum known in closed form. Gates:
//!
//! * **Decomposed ≥ joint hypervolume** — the coordinate-descent frontier
//!   must match or beat the joint MOGD frontier's hypervolume (shared
//!   padded envelope), at **lower wall-clock** (median over rounds).
//! * **Per-stage beats one-global-config** — the best achievable summed
//!   cost under a single shared stage knob exceeds the per-stage optimum
//!   by at least the analytic margin `1 + Var_w(a)` (work-weighted
//!   variance of the per-stage optima), and no global configuration
//!   reaches the per-stage critical-path latency floor.
//!
//! The binary validates its own output: the JSON is re-parsed and the
//! gates re-checked from the file, so a malformed report fails the run.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;
use udao::{Fold, StageMode, StageObjectiveSpec, StageRequest, Udao};
use udao_core::objective::ObjectiveModel;
use udao_core::pareto::{hypervolume, ParetoPoint};
use udao_sparksim::{ClusterSpec, StageFixture};

const OUT_PATH: &str = "BENCH_stages.json";
/// Decomposed hypervolume must reach this fraction of the joint solver's.
const HV_RATIO_GATE: f64 = 0.999;
/// Fraction of the analytic one-global-config cost margin the measured
/// ratio must reach (the lattice can only make the global config worse
/// than the continuous optimum, so this only absorbs float noise).
const MARGIN_FRACTION_GATE: f64 = 1.0 - 1e-9;

fn request(fx: &StageFixture, mode: StageMode, points: usize) -> StageRequest {
    StageRequest::new("bench-stages", fx.dag.clone(), fx.space())
        .objective(StageObjectiveSpec::analytic(
            "latency",
            Fold::CriticalPath,
            fx.latency_models(),
        ))
        .objective(StageObjectiveSpec::analytic("cost", Fold::Sum, fx.cost_models()))
        .points(points)
        .mode(mode)
}

fn build_udao() -> Result<Udao, String> {
    Udao::builder(ClusterSpec::paper_cluster())
        .pf(
            udao_core::pf::PfVariant::ApproxSequential,
            udao_core::pf::PfOptions {
                mogd: udao_core::mogd::MogdConfig {
                    multistarts: 4,
                    max_iters: 60,
                    ..Default::default()
                },
                // 33 levels → dyadic lattice containing the fixture's
                // per-stage optima, so descent recovers them bitwise.
                exact_resolution: 33,
                ..Default::default()
            },
        )
        .build()
        .map_err(|e| format!("build: {e}"))
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    let n = sorted_ms.len();
    let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    sorted_ms[idx]
}

fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    v
}

/// Hypervolume of both frontiers against a shared padded envelope.
fn paired_hv(a: &[ParetoPoint], b: &[ParetoPoint]) -> Result<(f64, f64), String> {
    if a.is_empty() || b.is_empty() {
        return Err("empty frontier in hypervolume comparison".into());
    }
    let k = a[0].f.len();
    let mut utopia = vec![f64::INFINITY; k];
    let mut nadir = vec![f64::NEG_INFINITY; k];
    for p in a.iter().chain(b) {
        for (j, v) in p.f.iter().enumerate() {
            utopia[j] = utopia[j].min(*v);
            nadir[j] = nadir[j].max(*v);
        }
    }
    for j in 0..k {
        let pad = (nadir[j] - utopia[j]).abs().max(1e-9) * 0.05;
        utopia[j] -= pad;
        nadir[j] += pad;
    }
    let fs = |fr: &[ParetoPoint]| -> Vec<Vec<f64>> { fr.iter().map(|p| p.f.clone()).collect() };
    Ok((hypervolume(&fs(a), &utopia, &nadir), hypervolume(&fs(b), &utopia, &nadir)))
}

/// The best a *single* global configuration can do: exhaustive lattice
/// sweep over (cluster knob, one shared stage knob), every stage forced to
/// the shared value, scored by the same composed objectives.
fn one_global_config_floors(fx: &StageFixture, resolution: usize) -> (f64, f64) {
    let (latency, cost) = fx.composed();
    let n = fx.len();
    let mut best_latency = f64::INFINITY;
    let mut best_cost = f64::INFINITY;
    for iu in 0..resolution {
        let u = iu as f64 / (resolution - 1) as f64;
        for iv in 0..resolution {
            let v = iv as f64 / (resolution - 1) as f64;
            let mut x = Vec::with_capacity(1 + n);
            x.push(u);
            x.extend(std::iter::repeat(v).take(n));
            best_latency = best_latency.min(latency.predict(&x));
            best_cost = best_cost.min(cost.predict(&x));
        }
    }
    (best_latency, best_cost)
}

fn run() -> Result<(), String> {
    let fast = std::env::var("CHECK_FAST").is_ok_and(|v| v == "1");
    let rounds = if fast { 3 } else { 10 };
    // 9 points → λ = t/8 sits on the dyadic lattice, so every decomposed
    // sweep solve lands exactly on the closed-form front.
    let points = 9;

    let fx = StageFixture::diamond();
    let udao = build_udao()?;

    // Warm-up both paths once to keep one-time costs out of the medians.
    udao.recommend_stages(&request(&fx, StageMode::Descent, points))
        .map_err(|e| format!("descent warm-up: {e}"))?;
    udao.recommend_stages(&request(&fx, StageMode::Joint, points))
        .map_err(|e| format!("joint warm-up: {e}"))?;

    let mut descent_ms = Vec::with_capacity(rounds);
    let mut joint_ms = Vec::with_capacity(rounds);
    let mut hv_ratio_min = f64::INFINITY;
    let mut hv_descent_last = 0.0;
    let mut hv_joint_last = 0.0;
    let mut front_residual_max: f64 = 0.0;
    let mut stage_latency_min = f64::INFINITY;
    let mut stage_cost_min = f64::INFINITY;
    for round in 0..rounds {
        let t = Instant::now();
        let descent = udao
            .recommend_stages(&request(&fx, StageMode::Descent, points))
            .map_err(|e| format!("descent {round}: {e}"))?;
        descent_ms.push(t.elapsed().as_secs_f64() * 1e3);

        let t = Instant::now();
        let joint = udao
            .recommend_stages(&request(&fx, StageMode::Joint, points))
            .map_err(|e| format!("joint {round}: {e}"))?;
        joint_ms.push(t.elapsed().as_secs_f64() * 1e3);

        let (hv_descent, hv_joint) = paired_hv(&descent.frontier, &joint.frontier)?;
        if hv_joint <= 0.0 {
            return Err(format!("round {round}: joint frontier has zero hypervolume"));
        }
        hv_ratio_min = hv_ratio_min.min(hv_descent / hv_joint);
        hv_descent_last = hv_descent;
        hv_joint_last = hv_joint;
        // Closed-form truth: the front identity `√(L/CP−1) + √(C/S−1)`
        // equals exactly 1 on the analytic front (it reduces to
        // `|1−u| + u`), exceeds 1 above it, and cannot go below — so every
        // decomposed frontier point must satisfy it to float precision.
        for p in &descent.frontier {
            front_residual_max =
                front_residual_max.max((fx.front_residual(p.f[0], p.f[1]) - 1.0).abs());
            stage_latency_min = stage_latency_min.min(p.f[0]);
            stage_cost_min = stage_cost_min.min(p.f[1]);
        }
    }

    let (global_latency_min, global_cost_min) = one_global_config_floors(&fx, 33);
    let cost_ratio = global_cost_min / stage_cost_min;
    let cost_margin = fx.global_config_margin();
    let latency_dominated = global_latency_min > stage_latency_min;

    let descent_ms = sorted(descent_ms);
    let joint_ms = sorted(joint_ms);
    let descent_p50 = percentile(&descent_ms, 0.50);
    let joint_p50 = percentile(&joint_ms, 0.50);
    let faster = descent_p50 <= joint_p50;
    let gate = hv_ratio_min >= HV_RATIO_GATE
        && faster
        && front_residual_max <= 1e-9
        && cost_ratio >= cost_margin * MARGIN_FRACTION_GATE
        && latency_dominated;
    println!(
        "[bench] {rounds} rounds on the diamond DAG: decomposed p50 {descent_p50:.2} ms vs \
         joint p50 {joint_p50:.2} ms, hv ratio min {hv_ratio_min:.6} (gate {HV_RATIO_GATE}), \
         front residual max {front_residual_max:.2e}, one-global-config cost ratio \
         {cost_ratio:.4} (analytic margin {cost_margin:.4})"
    );

    let report = serde_json::json!({
        "fixture": "diamond",
        "stages": fx.len(),
        "rounds": rounds,
        "points": points,
        "decomposed_p50_ms": descent_p50,
        "decomposed_p95_ms": percentile(&descent_ms, 0.95),
        "joint_p50_ms": joint_p50,
        "joint_p95_ms": percentile(&joint_ms, 0.95),
        "decomposed_faster": faster,
        "decomposed_hv": hv_descent_last,
        "joint_hv": hv_joint_last,
        "hv_ratio_min": hv_ratio_min,
        "hv_ratio_gate": HV_RATIO_GATE,
        "front_residual_max": front_residual_max,
        "stage_latency_min": stage_latency_min,
        "stage_cost_min": stage_cost_min,
        "global_latency_min": global_latency_min,
        "global_cost_min": global_cost_min,
        "one_global_cost_ratio": cost_ratio,
        "one_global_cost_margin": cost_margin,
        "latency_dominated": latency_dominated,
        "stages_gate": gate,
    });
    let mut f = std::fs::File::create(OUT_PATH).map_err(|e| format!("create {OUT_PATH}: {e}"))?;
    let rendered =
        serde_json::to_string_pretty(&report).map_err(|e| format!("render report: {e}"))?;
    f.write_all(rendered.as_bytes()).map_err(|e| format!("write {OUT_PATH}: {e}"))?;
    println!("[bench] wrote {OUT_PATH}");

    // Self-validate from the file, so downstream checks can trust the JSON.
    let raw = std::fs::read_to_string(OUT_PATH).map_err(|e| format!("read back: {e}"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("re-parse: {e}"))?;
    let field = |name: &str| -> Result<f64, String> {
        parsed.get(name).and_then(serde_json::Value::as_f64).ok_or(format!("{name} missing"))
    };
    if field("hv_ratio_min")? < HV_RATIO_GATE {
        return Err(format!(
            "stages gate failed: decomposed hypervolume only {:.6} of joint (need {HV_RATIO_GATE})",
            field("hv_ratio_min")?
        ));
    }
    if !matches!(parsed.get("decomposed_faster"), Some(serde_json::Value::Bool(true))) {
        return Err(format!(
            "stages gate failed: decomposed p50 {descent_p50:.2} ms did not beat joint \
             {joint_p50:.2} ms"
        ));
    }
    if field("front_residual_max")? > 1e-9 {
        return Err(format!(
            "stages gate failed: decomposed frontier strayed {front_residual_max:.2e} from the \
             closed-form front"
        ));
    }
    if field("one_global_cost_ratio")? < cost_margin * MARGIN_FRACTION_GATE {
        return Err(format!(
            "stages gate failed: one-global-config cost ratio {cost_ratio:.4} below the analytic \
             margin {cost_margin:.4}"
        ));
    }
    if !matches!(parsed.get("latency_dominated"), Some(serde_json::Value::Bool(true))) {
        return Err(
            "stages gate failed: a single global configuration matched the per-stage latency floor"
                .into(),
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_stages failed: {e}");
            ExitCode::FAILURE
        }
    }
}
