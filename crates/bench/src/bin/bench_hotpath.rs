//! Hot-path bench: scalar vs. batched model inference at MOGD restart-count
//! batch sizes, emitting `BENCH_hotpath.json`.
//!
//! Run: `cargo run --release -p udao-bench --bin bench_hotpath`
//!
//! MOGD steps all multi-start restarts of one CO problem in lockstep, so
//! the model sees one `predict_batch` of `multistarts + 1` points per Adam
//! iteration instead of that many scalar `predict` calls. This bench
//! measures exactly that shape: a fig4-scale MLP (and a GP for reference)
//! evaluated point-by-point vs. in one batch, on identical inputs.
//!
//! The binary validates its own output: batched results must be bitwise
//! identical to scalar ones, and the batched path must not be slower. CI
//! additionally requires the recorded MLP speedup to stay >= 1.

use std::hint::black_box;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;
use udao_core::ObjectiveModel;
use udao_model::dataset::Dataset;
use udao_model::mlp::{Mlp, MlpConfig};
use udao_model::{Gp, GpConfig};

const OUT_PATH: &str = "BENCH_hotpath.json";
/// Default MOGD restarts (8) plus the center start.
const BATCH_SIZE: usize = 9;
/// Timed repetitions per path (each covers one full batch).
const REPS: usize = 3000;

/// fig4-scale training set: the 2-D (cores, memory) knob surface the batch
/// experiments sweep, with a smooth latency-like response.
fn fig4_data() -> Dataset {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..12 {
        for j in 0..12 {
            let a = i as f64 / 11.0;
            let b = j as f64 / 11.0;
            x.push(vec![a, b]);
            y.push(30.0 + 80.0 / (1.0 + 6.0 * a) + 15.0 * (b - 0.4) * (b - 0.4));
        }
    }
    Dataset::new(x, y)
}

fn probe_points() -> Vec<Vec<f64>> {
    (0..BATCH_SIZE)
        .map(|i| {
            let t = i as f64 / (BATCH_SIZE - 1) as f64;
            vec![t, 1.0 - 0.5 * t]
        })
        .collect()
}

struct Timing {
    scalar_us_per_point: f64,
    batched_us_per_point: f64,
    speedup: f64,
}

/// Time `REPS` scalar sweeps vs. `REPS` batched calls over the same points
/// and confirm the two paths agree bitwise.
fn time_model(model: &dyn ObjectiveModel, xs: &[Vec<f64>]) -> Result<Timing, String> {
    let n = xs.len();
    let mut out = vec![0.0; n];
    // Warm-up + bitwise agreement check.
    model.predict_batch(xs, &mut out);
    for (x, b) in xs.iter().zip(&out) {
        let s = model.predict(x);
        if s.to_bits() != b.to_bits() {
            return Err(format!("batched {b} != scalar {s} at {x:?}"));
        }
    }

    let started = Instant::now();
    let mut sink = 0.0;
    for _ in 0..REPS {
        for x in xs {
            sink += model.predict(black_box(x));
        }
    }
    let scalar_us = started.elapsed().as_secs_f64() * 1e6 / (REPS * n) as f64;
    black_box(sink);

    let started = Instant::now();
    for _ in 0..REPS {
        model.predict_batch(black_box(xs), &mut out);
        black_box(&out);
    }
    let batched_us = started.elapsed().as_secs_f64() * 1e6 / (REPS * n) as f64;

    Ok(Timing {
        scalar_us_per_point: scalar_us,
        batched_us_per_point: batched_us,
        speedup: scalar_us / batched_us,
    })
}

fn run() -> Result<(), String> {
    let data = fig4_data();
    let xs = probe_points();

    // The paper's largest latency model: 4 hidden layers of 128 units.
    let mlp_cfg =
        MlpConfig { hidden: vec![128, 128, 128, 128], epochs: 120, ..Default::default() };
    let mlp = Mlp::fit(&data, &mlp_cfg).ok_or("MLP training failed")?;
    let mlp_t = time_model(&mlp, &xs).map_err(|e| format!("mlp: {e}"))?;
    println!(
        "[bench] mlp: scalar {:.3} us/pt, batched {:.3} us/pt, speedup {:.2}x",
        mlp_t.scalar_us_per_point, mlp_t.batched_us_per_point, mlp_t.speedup
    );

    let gp = Gp::fit(&data, &GpConfig::default()).ok_or("GP training failed")?;
    let gp_t = time_model(&gp, &xs).map_err(|e| format!("gp: {e}"))?;
    println!(
        "[bench] gp:  scalar {:.3} us/pt, batched {:.3} us/pt, speedup {:.2}x",
        gp_t.scalar_us_per_point, gp_t.batched_us_per_point, gp_t.speedup
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"batch_size\": {},\n",
            "  \"reps\": {},\n",
            "  \"mlp_scalar_us_per_point\": {:.4},\n",
            "  \"mlp_batched_us_per_point\": {:.4},\n",
            "  \"mlp_speedup\": {:.4},\n",
            "  \"gp_scalar_us_per_point\": {:.4},\n",
            "  \"gp_batched_us_per_point\": {:.4},\n",
            "  \"gp_speedup\": {:.4},\n",
            "  \"batched_not_slower\": {}\n",
            "}}\n"
        ),
        BATCH_SIZE,
        REPS,
        mlp_t.scalar_us_per_point,
        mlp_t.batched_us_per_point,
        mlp_t.speedup,
        gp_t.scalar_us_per_point,
        gp_t.batched_us_per_point,
        gp_t.speedup,
        mlp_t.speedup >= 1.0 && gp_t.speedup >= 1.0,
    );
    let mut f = std::fs::File::create(OUT_PATH).map_err(|e| format!("create {OUT_PATH}: {e}"))?;
    f.write_all(json.as_bytes()).map_err(|e| format!("write {OUT_PATH}: {e}"))?;
    println!("[bench] wrote {OUT_PATH}");

    // Self-validate: re-parse, batched must not be slower than scalar.
    let raw = std::fs::read_to_string(OUT_PATH).map_err(|e| format!("read back: {e}"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("re-parse: {e}"))?;
    let mlp_speedup = parsed
        .get("mlp_speedup")
        .and_then(serde_json::Value::as_f64)
        .ok_or("mlp_speedup missing")?;
    if mlp_speedup < 1.0 {
        return Err(format!("batched MLP path is slower than scalar ({mlp_speedup:.2}x)"));
    }
    if mlp_speedup < 2.0 {
        eprintln!("[bench] warning: MLP speedup {mlp_speedup:.2}x below the 2x target");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_hotpath failed: {e}");
            ExitCode::FAILURE
        }
    }
}
