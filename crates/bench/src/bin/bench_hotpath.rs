//! Hot-path bench: scalar vs. batched model inference at MOGD restart-count
//! batch sizes, emitting `BENCH_hotpath.json`.
//!
//! Run: `cargo run --release -p udao-bench --bin bench_hotpath`
//!
//! MOGD steps all multi-start restarts of one CO problem in lockstep, so
//! the model sees one `predict_batch` of `multistarts + 1` points per Adam
//! iteration instead of that many scalar `predict` calls. This bench
//! measures exactly that shape: a fig4-scale MLP (and a GP for reference)
//! evaluated point-by-point vs. in one batch, on identical inputs — plus
//! the opt-in f32 fast path and the incremental GP Cholesky row-append
//! (`Gp::extend`) against the full refit it replaces.
//!
//! The binary validates its own output:
//!
//! * batched f64 results must be bitwise identical to scalar ones;
//! * the batched MLP path must beat the pre-SIMD per-point baseline
//!   ([`MLP_BASELINE_US_PER_POINT`], recorded before the cache-blocked /
//!   SIMD kernels landed) by at least [`MLP_SPEEDUP_GATE`]x on at least
//!   one kernel variant (f64 batched or f32 fast path);
//! * `Gp::extend` must be faster than the full `Gp::fit` fallback.
//!
//! The combined verdict lands in the `hotpath_gate` field, which
//! `scripts/check.sh` re-checks on disk and fails CI over loudly.

use std::hint::black_box;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;
use udao_core::ObjectiveModel;
use udao_model::dataset::Dataset;
use udao_model::mlp::{Mlp, MlpConfig};
use udao_model::{Gp, GpConfig};

const OUT_PATH: &str = "BENCH_hotpath.json";
/// Default MOGD restarts (8) plus the center start.
const BATCH_SIZE: usize = 9;
/// Timed repetitions per path (each covers one full batch).
const REPS: usize = 3000;
/// Measurement blocks per path: each path is timed [`BLOCKS`] times at
/// `REPS / BLOCKS` repetitions and the *minimum* per-point cost wins. A
/// shared CI box sees transient neighbours inflate wall-clock uniformly;
/// the fastest block is the closest observable estimate of the kernel's
/// actual cost, so the speedup gates don't flap under contention.
const BLOCKS: usize = 8;
/// Batched MLP per-point cost recorded on this suite *before* the
/// cache-blocked/SIMD kernels landed (BENCH_hotpath.json at the naive
/// axpy-loop seed: 13.8766 µs/pt on a quiet host). Kept for provenance
/// in the JSON; the gate itself divides by [`time_naive_baseline`] — the
/// same pre-SIMD loop re-timed in this run — so that host contention,
/// which inflates both sides equally, cancels out of the ratio instead
/// of flapping an absolute-microseconds gate.
const MLP_BASELINE_US_PER_POINT: f64 = 13.88;
/// Required speedup over the pre-SIMD baseline on at least one kernel
/// variant.
const MLP_SPEEDUP_GATE: f64 = 4.0;

/// fig4-scale training set: the 2-D (cores, memory) knob surface the batch
/// experiments sweep, with a smooth latency-like response.
fn fig4_data() -> Dataset {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..12 {
        for j in 0..12 {
            let a = i as f64 / 11.0;
            let b = j as f64 / 11.0;
            x.push(vec![a, b]);
            y.push(30.0 + 80.0 / (1.0 + 6.0 * a) + 15.0 * (b - 0.4) * (b - 0.4));
        }
    }
    Dataset::new(x, y)
}

fn probe_points() -> Vec<Vec<f64>> {
    (0..BATCH_SIZE)
        .map(|i| {
            let t = i as f64 / (BATCH_SIZE - 1) as f64;
            vec![t, 1.0 - 0.5 * t]
        })
        .collect()
}

struct Timing {
    scalar_us_per_point: f64,
    batched_us_per_point: f64,
    speedup: f64,
}

/// Best-of-[`BLOCKS`] per-point cost of `body`, where each block runs
/// `REPS / BLOCKS` repetitions over `points` points.
fn time_best(points: usize, mut body: impl FnMut()) -> f64 {
    let per_block = (REPS / BLOCKS).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..BLOCKS {
        let started = Instant::now();
        for _ in 0..per_block {
            body();
        }
        let us = started.elapsed().as_secs_f64() * 1e6 / (per_block * points) as f64;
        best = best.min(us);
    }
    best
}

/// Time scalar sweeps vs. batched calls over the same points (best of
/// [`BLOCKS`] blocks each) and confirm the two paths agree bitwise.
fn time_model(model: &dyn ObjectiveModel, xs: &[Vec<f64>]) -> Result<Timing, String> {
    let n = xs.len();
    let mut out = vec![0.0; n];
    // Warm-up + bitwise agreement check.
    model.predict_batch(xs, &mut out);
    for (x, b) in xs.iter().zip(&out) {
        let s = model.predict(x);
        if s.to_bits() != b.to_bits() {
            return Err(format!("batched {b} != scalar {s} at {x:?}"));
        }
    }

    let mut sink = 0.0;
    let scalar_us = time_best(n, || {
        for x in xs {
            sink += model.predict(black_box(x));
        }
    });
    black_box(sink);

    let batched_us = time_best(n, || {
        model.predict_batch(black_box(xs), &mut out);
        black_box(&out);
    });

    Ok(Timing {
        scalar_us_per_point: scalar_us,
        batched_us_per_point: batched_us,
        speedup: scalar_us / batched_us,
    })
}

/// Per-point cost of the pre-SIMD inference loop, re-timed in this run:
/// one point at a time, each layer as the serial axpy sweep the old
/// `linalg::affine_batch` ran (bias copy, then `out += x[i] * wt_row`),
/// on synthetic weights of the benched MLP's exact shape. Weight values
/// don't matter for timing; the loop shape and memory traffic do. This
/// is the denominator of the baseline gate — measured under the same
/// host conditions as the kernels it is compared against.
fn time_naive_baseline(xs: &[Vec<f64>], hidden: &[usize]) -> f64 {
    let in_dim = xs[0].len();
    let mut dims = vec![in_dim];
    dims.extend_from_slice(hidden);
    dims.push(1);
    let layers: Vec<(usize, usize, Vec<f64>, Vec<f64>)> = dims
        .windows(2)
        .map(|w| {
            let (ind, outd) = (w[0], w[1]);
            let wt: Vec<f64> =
                (0..ind * outd).map(|t| ((t % 17) as f64 - 8.0) * 0.05).collect();
            let b: Vec<f64> = (0..outd).map(|t| (t % 5) as f64 * 0.01).collect();
            (ind, outd, wt, b)
        })
        .collect();
    let max_width = *dims.iter().max().unwrap_or(&1);
    let mut cur = vec![0.0; max_width];
    let mut next = vec![0.0; max_width];
    time_best(xs.len(), || {
        for x in xs {
            cur[..in_dim].copy_from_slice(x);
            let mut width = in_dim;
            for (li, (ind, outd, wt, b)) in layers.iter().enumerate() {
                debug_assert_eq!(width, *ind);
                next[..*outd].copy_from_slice(b);
                for (i, xi) in cur[..*ind].iter().enumerate() {
                    let row = &wt[i * outd..(i + 1) * outd];
                    for (o, w) in next[..*outd].iter_mut().zip(row) {
                        *o += xi * w;
                    }
                }
                if li + 1 < layers.len() {
                    for o in next[..*outd].iter_mut() {
                        *o = o.max(0.0);
                    }
                }
                std::mem::swap(&mut cur, &mut next);
                width = *outd;
            }
            black_box(cur[0]);
        }
    })
}

/// Time the f32 fast path on the same points and report its worst relative
/// error against the f64 batch.
fn time_mlp_f32(mlp: &Mlp, xs: &[Vec<f64>]) -> (f64, f64) {
    let n = xs.len();
    let mut f32_out = vec![0.0; n];
    let mut f64_out = vec![0.0; n];
    mlp.predict_batch_f32(xs, &mut f32_out); // warm the f32 weight mirrors
    ObjectiveModel::predict_batch(mlp, xs, &mut f64_out);
    let max_rel_err = f32_out
        .iter()
        .zip(&f64_out)
        .map(|(a, b)| (a - b).abs() / (1.0 + b.abs()))
        .fold(0.0, f64::max);

    let us_per_point = time_best(n, || {
        mlp.predict_batch_f32(black_box(xs), &mut f32_out);
        black_box(&f32_out);
    });
    (us_per_point, max_rel_err)
}

/// Time incremental `Gp::extend` (rank-k Cholesky row append) against the
/// full `Gp::fit` it replaces on the serving path, on the same grown
/// training set. Returns `(extend_ms, refit_ms, max predictive gap)`.
fn time_gp_extend(data: &Dataset, xs: &[Vec<f64>]) -> Result<(f64, f64, f64), String> {
    let n = data.x.len();
    let split = n - 8; // the small-batch ingest shape the server extends on
    let base = Dataset::new(data.x[..split].to_vec(), data.y[..split].to_vec());
    let new_x = data.x[split..].to_vec();
    let new_y = data.y[split..].to_vec();
    let cfg = GpConfig::default();
    let gp_base = Gp::fit(&base, &cfg).ok_or("GP base training failed")?;

    let mut extend_ms = f64::INFINITY;
    let mut extended = gp_base.clone();
    for _ in 0..3 {
        let mut fresh = gp_base.clone();
        let started = Instant::now();
        if !fresh.extend(&new_x, &new_y) {
            return Err("Gp::extend rejected a PD border it must accept".into());
        }
        extend_ms = extend_ms.min(started.elapsed().as_secs_f64() * 1e3);
        extended = fresh;
    }

    let started = Instant::now();
    let refit = Gp::fit(data, &cfg).ok_or("GP refit failed")?;
    let refit_ms = started.elapsed().as_secs_f64() * 1e3;

    // The two must agree closely where it matters: on the probe points.
    let gap = xs
        .iter()
        .map(|x| (extended.predict(x) - refit.predict(x)).abs())
        .fold(0.0, f64::max);
    Ok((extend_ms, refit_ms, gap))
}

fn run() -> Result<(), String> {
    let data = fig4_data();
    let xs = probe_points();
    let variant = udao_model::simd::kernel_variant().name();
    let forced_portable = udao_model::simd::forced_portable();
    println!("[bench] kernel variant: {variant} (forced_portable: {forced_portable})");

    // The paper's largest latency model: 4 hidden layers of 128 units.
    let mlp_cfg =
        MlpConfig { hidden: vec![128, 128, 128, 128], epochs: 120, ..Default::default() };
    let mlp = Mlp::fit(&data, &mlp_cfg).ok_or("MLP training failed")?;
    let mlp_t = time_model(&mlp, &xs).map_err(|e| format!("mlp: {e}"))?;
    let (mlp_f32_us, mlp_f32_err) = time_mlp_f32(&mlp, &xs);
    // Re-time the pre-SIMD loop under this run's host conditions so the
    // gate is a contention-free ratio, not an absolute-time comparison.
    let mlp_naive_us = time_naive_baseline(&xs, &mlp_cfg.hidden);
    let mlp_vs_baseline = mlp_naive_us / mlp_t.batched_us_per_point;
    let mlp_f32_vs_baseline = mlp_naive_us / mlp_f32_us;
    println!(
        "[bench] mlp: naive {:.3} us/pt (recorded seed {:.2}), scalar {:.3} us/pt, \
         batched {:.3} us/pt ({:.2}x naive), \
         f32 {:.3} us/pt ({:.2}x naive, max rel err {:.2e})",
        mlp_naive_us,
        MLP_BASELINE_US_PER_POINT,
        mlp_t.scalar_us_per_point,
        mlp_t.batched_us_per_point,
        mlp_vs_baseline,
        mlp_f32_us,
        mlp_f32_vs_baseline,
        mlp_f32_err,
    );

    let gp = Gp::fit(&data, &GpConfig::default()).ok_or("GP training failed")?;
    let gp_t = time_model(&gp, &xs).map_err(|e| format!("gp: {e}"))?;
    println!(
        "[bench] gp:  scalar {:.3} us/pt, batched {:.3} us/pt, speedup {:.2}x",
        gp_t.scalar_us_per_point, gp_t.batched_us_per_point, gp_t.speedup
    );
    let (gp_extend_ms, gp_refit_ms, gp_extend_gap) =
        time_gp_extend(&data, &xs).map_err(|e| format!("gp extend: {e}"))?;
    println!(
        "[bench] gp extend: {:.3} ms vs full refit {:.3} ms ({:.1}x), max predictive gap {:.2e}",
        gp_extend_ms,
        gp_refit_ms,
        gp_refit_ms / gp_extend_ms,
        gp_extend_gap,
    );

    let batched_not_slower = mlp_t.speedup >= 1.0 && gp_t.speedup >= 1.0;
    let baseline_gate =
        mlp_vs_baseline >= MLP_SPEEDUP_GATE || mlp_f32_vs_baseline >= MLP_SPEEDUP_GATE;
    let extend_beats_refit = gp_extend_ms < gp_refit_ms;
    let hotpath_gate = batched_not_slower && baseline_gate && extend_beats_refit;

    let json = format!(
        concat!(
            "{{\n",
            "  \"batch_size\": {},\n",
            "  \"reps\": {},\n",
            "  \"kernel_variant\": \"{}\",\n",
            "  \"forced_portable\": {},\n",
            "  \"mlp_scalar_us_per_point\": {:.4},\n",
            "  \"mlp_batched_us_per_point\": {:.4},\n",
            "  \"mlp_speedup\": {:.4},\n",
            "  \"mlp_f32_us_per_point\": {:.4},\n",
            "  \"mlp_f32_max_rel_err\": {:.3e},\n",
            "  \"mlp_baseline_us_per_point\": {:.4},\n",
            "  \"mlp_naive_us_per_point\": {:.4},\n",
            "  \"mlp_vs_baseline\": {:.4},\n",
            "  \"mlp_f32_vs_baseline\": {:.4},\n",
            "  \"gp_scalar_us_per_point\": {:.4},\n",
            "  \"gp_batched_us_per_point\": {:.4},\n",
            "  \"gp_speedup\": {:.4},\n",
            "  \"gp_extend_ms\": {:.4},\n",
            "  \"gp_refit_ms\": {:.4},\n",
            "  \"gp_extend_max_gap\": {:.3e},\n",
            "  \"batched_not_slower\": {},\n",
            "  \"extend_beats_refit\": {},\n",
            "  \"hotpath_gate\": {}\n",
            "}}\n"
        ),
        BATCH_SIZE,
        REPS,
        variant,
        forced_portable,
        mlp_t.scalar_us_per_point,
        mlp_t.batched_us_per_point,
        mlp_t.speedup,
        mlp_f32_us,
        mlp_f32_err,
        MLP_BASELINE_US_PER_POINT,
        mlp_naive_us,
        mlp_vs_baseline,
        mlp_f32_vs_baseline,
        gp_t.scalar_us_per_point,
        gp_t.batched_us_per_point,
        gp_t.speedup,
        gp_extend_ms,
        gp_refit_ms,
        gp_extend_gap,
        batched_not_slower,
        extend_beats_refit,
        hotpath_gate,
    );
    let mut f = std::fs::File::create(OUT_PATH).map_err(|e| format!("create {OUT_PATH}: {e}"))?;
    f.write_all(json.as_bytes()).map_err(|e| format!("write {OUT_PATH}: {e}"))?;
    println!("[bench] wrote {OUT_PATH}");

    // Self-validate: re-parse and fail loudly on any gate miss, naming the
    // branch that failed so a CI log points straight at the regression.
    let raw = std::fs::read_to_string(OUT_PATH).map_err(|e| format!("read back: {e}"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("re-parse: {e}"))?;
    let gate = match parsed.get("hotpath_gate") {
        Some(serde_json::Value::Bool(b)) => *b,
        _ => return Err("hotpath_gate missing".into()),
    };
    if !gate {
        if !batched_not_slower {
            return Err(format!(
                "batched inference is slower than scalar (mlp {:.2}x, gp {:.2}x)",
                mlp_t.speedup, gp_t.speedup
            ));
        }
        if !baseline_gate {
            return Err(format!(
                "no kernel variant reached {MLP_SPEEDUP_GATE}x over the pre-SIMD \
                 loop re-timed in this run ({mlp_naive_us:.2} us/pt; recorded seed \
                 {MLP_BASELINE_US_PER_POINT} us/pt) \
                 (f64 {mlp_vs_baseline:.2}x, f32 {mlp_f32_vs_baseline:.2}x, variant {variant})"
            ));
        }
        return Err(format!(
            "Gp::extend ({gp_extend_ms:.2} ms) must beat the full refit ({gp_refit_ms:.2} ms)"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_hotpath failed: {e}");
            ExitCode::FAILURE
        }
    }
}
