//! Criterion micro-benchmarks of the CO solvers and PF algorithms: MOGD vs
//! the exact lattice solver on one CO problem, and the three PF variants
//! computing a full frontier — the per-probe costs behind Fig. 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use udao_core::mogd::{Mogd, MogdConfig};
use udao_core::objective::{FnModel, ObjectiveModel};
use udao_core::pf::{PfOptions, PfVariant, ProgressiveFrontier};
use udao_core::solver::{Bound, CoProblem, CoSolver, ExactGridSolver, MooProblem};

fn problem(dim: usize) -> MooProblem {
    let lat: Arc<dyn ObjectiveModel> = Arc::new(FnModel::new(dim, move |x| {
        100.0 + 200.0 / (0.8 + 3.0 * x[0]) + 40.0 * x[1..].iter().sum::<f64>() / dim as f64
    }));
    let cost: Arc<dyn ObjectiveModel> =
        Arc::new(FnModel::new(dim, |x| 8.0 + 16.0 * x[0] + 6.0 * x.get(1).copied().unwrap_or(0.0)));
    MooProblem::new(dim, vec![lat, cost])
}

fn bench_co_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("co_solver");
    let p = problem(2);
    let co = CoProblem::constrained(0, vec![Bound::new(100.0, 250.0), Bound::new(8.0, 18.0)]);
    let mogd = Mogd::new(MogdConfig::default());
    g.bench_function("mogd_2d", |b| {
        b.iter(|| mogd.solve(&p, &co).unwrap());
    });
    // The exact lattice solver — the Knitro role: correct but slow.
    let grid = ExactGridSolver::new(64);
    g.bench_function("exact_grid_64_2d", |b| {
        b.iter(|| grid.solve(&p, &co).unwrap());
    });
    g.finish();
}

fn bench_mogd_dims(c: &mut Criterion) {
    let mut g = c.benchmark_group("mogd_dims");
    for dim in [2usize, 6, 12, 24] {
        let p = problem(dim);
        let co = CoProblem::constrained(0, vec![Bound::new(100.0, 250.0), Bound::new(8.0, 18.0)]);
        let mogd = Mogd::new(MogdConfig { multistarts: 4, max_iters: 60, ..Default::default() });
        g.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| mogd.solve(&p, &co).unwrap());
        });
    }
    g.finish();
}

fn bench_pf_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("pf_frontier_10pts");
    g.sample_size(10);
    let p = problem(4);
    for (name, variant) in [
        ("pf_s_exact", PfVariant::Sequential),
        ("pf_as", PfVariant::ApproxSequential),
        ("pf_ap", PfVariant::ApproxParallel),
    ] {
        let opts = PfOptions {
            exact_resolution: 24,
            mogd: MogdConfig { multistarts: 4, max_iters: 60, ..Default::default() },
            ..Default::default()
        };
        let pf = ProgressiveFrontier::new(variant, opts);
        g.bench_function(name, |b| {
            b.iter(|| pf.solve(&p, 10).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_co_solvers, bench_mogd_dims, bench_pf_variants);
criterion_main!(benches);
