//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! MOGD multi-start count and penalty constant P, the PF-AP grid
//! parameter `l`, the uncertainty inflation α, and the exact-vs-MC
//! uncertain-space estimators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use udao_core::mogd::MogdConfig;
use udao_core::objective::{FnModel, ObjectiveModel};
use udao_core::pareto::uncertain_space;
use udao_core::pf::{PfOptions, PfVariant, ProgressiveFrontier};
use udao_core::MooProblem;

fn problem() -> MooProblem {
    let lat: Arc<dyn ObjectiveModel> = Arc::new(FnModel::new(4, |x| {
        100.0 + 200.0 / (0.8 + 3.0 * x[0]) + 40.0 * x[1] + 10.0 * (x[2] - 0.5).powi(2)
            + 5.0 * (x[3] - 0.3).powi(2)
    }));
    let cost: Arc<dyn ObjectiveModel> =
        Arc::new(FnModel::new(4, |x| 8.0 + 16.0 * x[0] + 6.0 * x[1]));
    MooProblem::new(4, vec![lat, cost])
}

fn bench_multistarts(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_multistarts");
    g.sample_size(10);
    let p = problem();
    for starts in [1usize, 4, 8, 16] {
        let opts = PfOptions {
            mogd: MogdConfig { multistarts: starts, max_iters: 60, ..Default::default() },
            ..Default::default()
        };
        let pf = ProgressiveFrontier::new(PfVariant::ApproxSequential, opts);
        g.bench_with_input(BenchmarkId::from_parameter(starts), &starts, |b, _| {
            b.iter(|| pf.solve(&p, 8).unwrap());
        });
    }
    g.finish();
}

fn bench_grid_l(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_pfap_grid_l");
    g.sample_size(10);
    let p = problem();
    for l in [1usize, 2, 3] {
        let opts = PfOptions {
            grid_l: l,
            mogd: MogdConfig { multistarts: 4, max_iters: 60, ..Default::default() },
            ..Default::default()
        };
        let pf = ProgressiveFrontier::new(PfVariant::ApproxParallel, opts);
        g.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, _| {
            b.iter(|| pf.solve(&p, 12).unwrap());
        });
    }
    g.finish();
}

fn bench_penalty_and_alpha(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_mogd_penalty_alpha");
    g.sample_size(10);
    let p = problem();
    for (name, penalty, alpha) in
        [("p100_a0", 100.0, 0.0), ("p10_a0", 10.0, 0.0), ("p100_a1", 100.0, 1.0)]
    {
        let opts = PfOptions {
            mogd: MogdConfig { penalty, alpha, multistarts: 4, max_iters: 60, ..Default::default() },
            ..Default::default()
        };
        let pf = ProgressiveFrontier::new(PfVariant::ApproxSequential, opts);
        g.bench_function(name, |b| {
            b.iter(|| pf.solve(&p, 8).unwrap());
        });
    }
    g.finish();
}

fn bench_uncertain_space_estimators(c: &mut Criterion) {
    let mut g = c.benchmark_group("uncertain_space");
    // 2-D exact staircase vs 3-D quasi-Monte-Carlo on same-size frontiers.
    let frontier_2d: Vec<Vec<f64>> =
        (0..50).map(|i| vec![i as f64 / 49.0, 1.0 - i as f64 / 49.0]).collect();
    let frontier_3d: Vec<Vec<f64>> = (0..50)
        .map(|i| {
            let t = i as f64 / 49.0;
            vec![t, 1.0 - t, 0.5 + 0.3 * (t - 0.5).abs()]
        })
        .collect();
    g.bench_function("exact_2d_50pts", |b| {
        b.iter(|| uncertain_space(&frontier_2d, &[0.0, 0.0], &[1.0, 1.0]));
    });
    g.bench_function("mc_3d_50pts", |b| {
        b.iter(|| uncertain_space(&frontier_3d, &[0.0; 3], &[1.0; 3]));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_multistarts,
    bench_grid_l,
    bench_penalty_and_alpha,
    bench_uncertain_space_estimators
);
criterion_main!(benches);
