//! Criterion micro-benchmarks of the model substrate: GP fit/predict/
//! gradient, MLP ensemble train/predict/gradient, and the simulator —
//! the per-call costs the online MOO loop pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use udao_core::ObjectiveModel;
use udao_model::dataset::Dataset;
use udao_model::gp::{Gp, GpConfig};
use udao_model::mlp::{Ensemble, Mlp, MlpConfig};
use udao_sparksim::{simulate_batch, BatchConf, ClusterSpec, DataflowProgram};

fn training_data(n: usize, d: usize) -> Dataset {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..d).map(|j| ((i * 31 + j * 17) % 97) as f64 / 96.0).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| 100.0 + 200.0 / (0.8 + 3.0 * r[0]) + 40.0 * r.get(1).copied().unwrap_or(0.0))
        .collect();
    Dataset::new(x, y)
}

fn bench_gp(c: &mut Criterion) {
    let mut g = c.benchmark_group("gp");
    g.sample_size(10);
    for n in [50usize, 100, 200] {
        let d = training_data(n, 12);
        g.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| Gp::fit(&d, &GpConfig::default()).unwrap());
        });
    }
    let d = training_data(100, 12);
    let gp = Gp::fit(&d, &GpConfig::default()).unwrap();
    let x = vec![0.4; 12];
    let mut grad = vec![0.0; 12];
    g.bench_function("predict_n100", |b| b.iter(|| gp.predict(&x)));
    g.bench_function("predict_std_n100", |b| b.iter(|| gp.predict_std(&x)));
    g.bench_function("gradient_n100", |b| b.iter(|| gp.gradient(&x, &mut grad)));
    g.finish();
}

fn bench_mlp(c: &mut Criterion) {
    let mut g = c.benchmark_group("mlp");
    g.sample_size(10);
    let d = training_data(100, 12);
    let cfg = MlpConfig { hidden: vec![48, 48], epochs: 100, ..Default::default() };
    g.bench_function("fit_100ep", |b| {
        b.iter(|| Mlp::fit(&d, &cfg).unwrap());
    });
    let mlp = Mlp::fit(&d, &cfg).unwrap();
    let ens = Ensemble::fit(&d, &MlpConfig { epochs: 60, ..cfg.clone() }, 3).unwrap();
    let x = vec![0.4; 12];
    let mut grad = vec![0.0; 12];
    g.bench_function("predict", |b| b.iter(|| mlp.predict(&x)));
    g.bench_function("gradient", |b| b.iter(|| mlp.gradient(&x, &mut grad)));
    g.bench_function("ensemble3_predict_std", |b| b.iter(|| ens.predict_std(&x)));
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparksim");
    let cluster = ClusterSpec::paper_cluster();
    let conf = BatchConf::spark_default();
    for scale in [1_000.0f64, 10_000.0, 100_000.0] {
        let plan = DataflowProgram::tpcxbb_q2(scale);
        g.bench_with_input(
            BenchmarkId::new("q2", scale as u64),
            &scale,
            |b, _| b.iter(|| simulate_batch(&plan, &conf, &cluster, 1)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_gp, bench_mlp, bench_simulator);
criterion_main!(benches);
