//! Closed-form stage-truth suite for the per-stage tuning subsystem.
//!
//! The fixtures in `udao_sparksim::stages` are built so every composed
//! optimum is known analytically and lies on the exact solver's dyadic
//! lattice (see the module docs there): per-stage latency/cost surfaces
//! `w_i·(1+(1-u)²)·(1+(v-a_i)²)` / `w_i·(1+u²)·(1+(v-a_i)²)` compose to a
//! front swept purely by the global knob once every stage knob sits at its
//! optimum `a_i`. That lets this suite assert *bitwise* recovery, not
//! tolerance-band agreement:
//!
//! * the DAG-ordered coordinate descent recovers the exact composed
//!   optimum on a 2-stage chain, a diamond, and a fan-in join;
//! * no frontier point ever falls below the closed-form front (the front
//!   identity `√(L/CP−1) + √(C/S−1) = 1` holds to float precision);
//! * the best single global configuration is provably dominated on a
//!   heterogeneous DAG, at every sweep weight;
//! * per-stage requests served through the [`ServingEngine`] are
//!   bitwise-equal to serial solves;
//! * frontier-cache entries under stage-shaped keys never serve a
//!   differently-shaped DAG's frontier.

use std::sync::Arc;
use std::time::Duration;
use udao::{
    Fold, ServingEngine, ServingOptions, StageMode, StageObjectiveSpec, StageRequest, Udao,
};
use udao_core::budget::Budget;
use udao_core::pareto::dominates;
use udao_sparksim::objectives::BatchObjective;
use udao_sparksim::{ClusterSpec, StageFixture};

/// The sweep grid of a 5-point request: λ = t/4, all on the dyadic lattice.
const LAMBDAS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// 33 lattice levels → the dyadic `j/32` grid that contains every fixture
/// optimum, so block solves recover per-stage optima bitwise.
fn exact_udao(cache: Option<usize>) -> Udao {
    let mut builder = Udao::builder(ClusterSpec::paper_cluster()).pf(
        udao_core::pf::PfVariant::ApproxSequential,
        udao_core::pf::PfOptions {
            mogd: udao_core::mogd::MogdConfig {
                multistarts: 4,
                max_iters: 60,
                ..Default::default()
            },
            exact_resolution: 33,
            ..Default::default()
        },
    );
    if let Some(capacity) = cache {
        builder = builder.frontier_cache(capacity);
    }
    builder.build().expect("stage-truth options are valid")
}

fn stage_request(workload: &str, fx: &StageFixture, mode: StageMode) -> StageRequest {
    StageRequest::new(workload, fx.dag.clone(), fx.space())
        .objective(StageObjectiveSpec::analytic(
            "latency",
            Fold::CriticalPath,
            fx.latency_models(),
        ))
        .objective(StageObjectiveSpec::analytic("cost", Fold::Sum, fx.cost_models()))
        .points(LAMBDAS.len())
        .mode(mode)
}

/// Closed-form composed optima are recovered exactly: on every fixture the
/// recommended configuration is bitwise `[0.5, a_0, …, a_n]` (utopia-
/// nearest over the λ grid picks λ = ½), the predicted values are the
/// analytic front values, and the frontier contains the exact front point
/// of every sweep weight.
#[test]
fn descent_recovers_exact_composed_optima_on_all_fixtures() {
    let udao = exact_udao(None);
    for (name, fx) in [
        ("chain2", StageFixture::chain2()),
        ("diamond", StageFixture::diamond()),
        ("fanin_join", StageFixture::fanin_join()),
    ] {
        let rec = udao
            .recommend_stages(&stage_request(name, &fx, StageMode::Descent))
            .unwrap_or_else(|e| panic!("{name}: descent solve failed: {e}"));
        assert_eq!(rec.x, fx.front_config(0.5), "{name}: composed optimum, bitwise");
        assert_eq!(
            rec.predicted,
            vec![fx.ideal_latency(0.5), fx.ideal_cost(0.5)],
            "{name}: analytic front values, bitwise"
        );
        assert!(!rec.degraded, "{name}: clean primary solve");
        for lambda in LAMBDAS {
            let want = [fx.ideal_latency(lambda), fx.ideal_cost(lambda)];
            assert!(
                rec.frontier.iter().any(|p| p.f == want),
                "{name}: frontier misses the exact front point at λ={lambda}"
            );
        }
        assert_eq!(rec.report.stages_tuned, fx.len() as u64, "{name}: telemetry");
        assert!(rec.report.stage_descent_rounds > 0, "{name}: descent rounds recorded");
    }
}

/// Never below the front: the front identity `√(L/CP−1) + √(C/S−1)`
/// equals exactly 1 on the analytic 2-D front and exceeds it above; no
/// frontier point of either solve mode may undercut it.
#[test]
fn no_frontier_point_falls_below_the_closed_form_front() {
    let udao = exact_udao(None);
    for fx in [StageFixture::chain2(), StageFixture::diamond(), StageFixture::fanin_join()] {
        for mode in [StageMode::Descent, StageMode::Joint] {
            let rec = udao
                .recommend_stages(&stage_request("front-floor", &fx, mode))
                .expect("solve succeeds");
            for p in &rec.frontier {
                let residual = fx.front_residual(p.f[0], p.f[1]);
                assert!(
                    residual >= 1.0 - 1e-9,
                    "point {:?} sits below the closed-form front (residual {residual})",
                    p.f
                );
                if mode == StageMode::Descent {
                    // The descent frontier is not merely above the front —
                    // it is *on* it, to float precision.
                    assert!(
                        (residual - 1.0).abs() <= 1e-9,
                        "descent point {:?} strayed off the front (residual {residual})",
                        p.f
                    );
                }
            }
        }
    }
}

/// One-global-config is provably dominated on a heterogeneous DAG: at
/// every sweep weight, the best configuration with a single shared stage
/// knob (exhaustive lattice sweep) is dominated by the per-stage front
/// point, and the summed-cost gap meets the analytic `1 + Var_w(a)`
/// margin.
#[test]
fn one_global_config_is_dominated_on_a_heterogeneous_dag() {
    let fx = StageFixture::diamond();
    let udao = exact_udao(None);
    let rec = udao
        .recommend_stages(&stage_request("one-global", &fx, StageMode::Descent))
        .expect("descent solve succeeds");
    let (latency, cost) = fx.composed();
    use udao_core::objective::ObjectiveModel;
    let resolution = 33;
    for lambda in LAMBDAS {
        // Best single global configuration at this cluster knob: sweep the
        // one shared stage knob over the full lattice.
        let mut best = (f64::INFINITY, f64::INFINITY);
        for iv in 0..resolution {
            let v = iv as f64 / (resolution - 1) as f64;
            let mut x = vec![lambda];
            x.extend(std::iter::repeat(v).take(fx.len()));
            let f = (latency.predict(&x), cost.predict(&x));
            if f.1 < best.1 || (f.1 == best.1 && f.0 < best.0) {
                best = f;
            }
        }
        let front = [fx.ideal_latency(lambda), fx.ideal_cost(lambda)];
        assert!(
            dominates(&front, &[best.0, best.1]),
            "λ={lambda}: per-stage front {front:?} must dominate one-global-config {best:?}"
        );
        assert!(
            best.1 >= front[1] * fx.global_config_margin() * (1.0 - 1e-9),
            "λ={lambda}: cost gap {} below the analytic margin {}",
            best.1 / front[1],
            fx.global_config_margin()
        );
    }
    // The per-stage solve actually achieved those dominating points.
    let cost_min = rec.frontier.iter().map(|p| p.f[1]).fold(f64::INFINITY, f64::min);
    assert_eq!(cost_min, fx.total_work(), "per-stage cost floor is exactly S");
}

/// Per-stage requests through the serving engine are bitwise-equal to
/// serial solves: same configuration, predictions, and frontier,
/// regardless of worker count or scheduling.
#[test]
fn engine_per_stage_solves_are_bitwise_equal_to_serial() {
    let udao = Arc::new(exact_udao(None));
    let fx = StageFixture::diamond();
    let serial = udao
        .recommend_stages(&stage_request("engine-eq", &fx, StageMode::Descent))
        .expect("serial solve succeeds");
    let engine: ServingEngine<BatchObjective> = ServingEngine::start_with(
        Arc::clone(&udao),
        ServingOptions::default().with_workers(3),
    );
    for _ in 0..4 {
        let served = engine
            .solve_stages(stage_request("engine-eq", &fx, StageMode::Descent))
            .expect("engine solve succeeds");
        assert_eq!(served.x, serial.x, "configuration, bitwise");
        assert_eq!(served.predicted, serial.predicted, "predictions, bitwise");
        assert_eq!(served.frontier.len(), serial.frontier.len(), "frontier size");
        for (a, b) in served.frontier.iter().zip(&serial.frontier) {
            assert_eq!(a.f, b.f, "frontier objective vectors, bitwise");
            assert_eq!(a.x, b.x, "frontier configurations, bitwise");
        }
        // The engine stamped its scheduling decisions into the report.
        assert!(served.report.class.is_some(), "served report names its class");
    }
}

/// Stage-shaped cache keys partition the cache: an exact repeat is served
/// from the cached frontier, but a differently-shaped DAG under the same
/// workload id, objectives, and point budget never sees it.
#[test]
fn stage_shaped_cache_keys_never_serve_a_different_dag() {
    let udao = exact_udao(Some(16));
    let cache = udao.frontier_cache().expect("cache enabled").clone();
    let diamond = StageFixture::diamond();
    let fanin = StageFixture::fanin_join();
    // Same workload id, same objective names, same constraints and points:
    // the only difference between the two requests is the DAG shape.
    let cold = udao
        .recommend_stages(&stage_request("shared-wl", &diamond, StageMode::Descent))
        .expect("cold diamond solve");
    assert_eq!(cold.report.cache_misses, 1, "cold solve misses");
    assert_eq!(cache.len(), 1, "cold solve inserted its frontier");
    let hit = udao
        .recommend_stages(&stage_request("shared-wl", &diamond, StageMode::Descent))
        .expect("repeat diamond solve");
    assert_eq!(hit.report.cache_served, 1, "exact repeat is served from the cache");
    assert_eq!(hit.x, cold.x, "cache-served recommendation is bitwise-equal");
    assert_eq!(hit.predicted, cold.predicted, "cache-served predictions are bitwise-equal");
    let other = udao
        .recommend_stages(&stage_request("shared-wl", &fanin, StageMode::Descent))
        .expect("fan-in solve");
    assert_eq!(
        other.report.cache_served, 0,
        "a differently-shaped DAG must not be served the diamond frontier"
    );
    assert_eq!(other.report.cache_misses, 1, "different shape is a miss");
    assert_eq!(cache.len(), 2, "shapes occupy separate entries");
    // And it solved its *own* problem exactly, not the diamond's.
    assert_eq!(other.x, fanin.front_config(0.5), "fan-in optimum recovered, bitwise");
    // Joint and decomposed solves of the same DAG are separate entries
    // too (their frontiers differ by construction).
    let joint = udao
        .recommend_stages(&stage_request("shared-wl", &diamond, StageMode::Joint))
        .expect("joint diamond solve");
    assert_eq!(joint.report.cache_served, 0, "mode is part of the shape");
    assert_eq!(cache.len(), 3, "joint mode occupies its own entry");
}

/// A single-stage DAG degenerates cleanly: the composed problem is the
/// stage's own surface and descent still recovers its exact optimum.
#[test]
fn single_stage_dag_degenerates_to_plain_tuning() {
    let fx = StageFixture {
        dag: udao::StageDag::chain(1),
        surfaces: vec![udao_sparksim::stages::StageSurface { work: 2.0, knob_opt: 0.75 }],
    };
    let udao = exact_udao(None);
    let rec = udao
        .recommend_stages(&stage_request("single", &fx, StageMode::Descent))
        .expect("single-stage solve succeeds");
    assert_eq!(rec.x, fx.front_config(0.5), "single-stage optimum, bitwise");
    assert_eq!(rec.report.stages_tuned, 1);
    assert_eq!(rec.report.stage_attribution.len(), 1);
}

/// An already-expired budget degrades gracefully: the solve still answers
/// (from the anchor candidates) and is marked degraded, never panics or
/// hangs.
#[test]
fn expired_budget_degrades_instead_of_failing() {
    let udao = exact_udao(None);
    let fx = StageFixture::chain2();
    let rec = udao
        .recommend_stages_within(
            &stage_request("expired", &fx, StageMode::Descent),
            Budget::new(Duration::ZERO),
        )
        .expect("expired-budget solve still answers");
    assert!(rec.degraded, "truncated sweep must be marked degraded");
    assert!(rec.predicted.iter().all(|v| v.is_finite()), "answer is finite");
}
