//! Cross-method MOO integration tests: PF variants against the baseline
//! methods on a shared learned-model problem, scored with the same
//! uncertain-space metric — a miniature of the Fig. 4 experiment.

use std::sync::Arc;
use udao_baselines::evo::{nsga2, EvoConfig};
use udao_baselines::mobo::{ehvi, MoboConfig};
use udao_baselines::nc::{normal_constraints, NcConfig};
use udao_baselines::ws::{weighted_sum, WsConfig};
use udao_core::objective::{FnModel, ObjectiveModel};
use udao_core::pareto::uncertain_space;
use udao_core::pf::{PfOptions, PfVariant, ProgressiveFrontier};
use udao_core::MooProblem;

/// A latency/cost problem with the TPCx-BB Q2 geometry: latency falls with
/// resources (knob 0) and rises with an inefficiency knob (knob 1); cost
/// rises with both. Smooth, conflicting, non-degenerate.
fn q2_like_problem() -> MooProblem {
    let lat: Arc<dyn ObjectiveModel> = Arc::new(FnModel::new(3, |x| {
        100.0 + 200.0 / (0.8 + 3.0 * x[0]) + 40.0 * x[1] + 15.0 * (x[2] - 0.5).powi(2)
    }));
    let cost: Arc<dyn ObjectiveModel> =
        Arc::new(FnModel::new(3, |x| 8.0 + 16.0 * x[0] + 6.0 * x[1]));
    MooProblem::new(3, vec![lat, cost])
}

fn frontier_fs(pts: &[udao_core::ParetoPoint]) -> Vec<Vec<f64>> {
    pts.iter().map(|p| p.f.clone()).collect()
}

const UTOPIA: [f64; 2] = [152.6, 8.0];
const NADIR: [f64; 2] = [350.0, 24.0];

#[test]
fn every_method_reduces_uncertainty_below_half() {
    let p = q2_like_problem();
    let pf = ProgressiveFrontier::new(PfVariant::ApproxParallel, PfOptions::default())
        .solve(&p, 15)
        .unwrap();
    let ws = weighted_sum(&p, 10, &WsConfig::default());
    let nc = normal_constraints(&p, 10, &NcConfig::default());
    let evo = nsga2(&p, 1500, &EvoConfig::default());
    let bo = ehvi::run(&p, 25, &MoboConfig::default());
    for (name, fs) in [
        ("pf", frontier_fs(&pf.frontier)),
        ("ws", frontier_fs(&ws.frontier)),
        ("nc", frontier_fs(&nc.frontier)),
        ("evo", frontier_fs(&evo.frontier)),
        ("ehvi", frontier_fs(&bo.frontier)),
    ] {
        let u = uncertain_space(&fs, &UTOPIA, &NADIR);
        assert!(u < 0.55, "{name}: uncertainty {u} with {} points", fs.len());
    }
}

#[test]
fn pf_offers_best_coverage_per_probe() {
    let p = q2_like_problem();
    let pf = ProgressiveFrontier::new(PfVariant::ApproxParallel, PfOptions::default())
        .solve(&p, 15)
        .unwrap();
    let ws = weighted_sum(&p, 15, &WsConfig::default());
    let u_pf = uncertain_space(&frontier_fs(&pf.frontier), &UTOPIA, &NADIR);
    let u_ws = uncertain_space(&frontier_fs(&ws.frontier), &UTOPIA, &NADIR);
    assert!(
        u_pf <= u_ws + 0.05,
        "PF coverage should not lose to WS: {u_pf} vs {u_ws}"
    );
}

#[test]
fn pf_uncertainty_metric_matches_queue_accounting() {
    // The externally computed uncertain-space over the PF frontier must
    // agree (loosely) with PF's own queue-volume accounting.
    let p = q2_like_problem();
    let run = ProgressiveFrontier::new(PfVariant::ApproxSequential, PfOptions::default())
        .solve(&p, 12)
        .unwrap();
    let external = uncertain_space(
        &frontier_fs(&run.frontier),
        &run.utopia,
        &run.nadir,
    );
    let internal = run.final_uncertainty();
    assert!(
        (external - internal).abs() < 0.25,
        "external {external} vs internal {internal}"
    );
}

#[test]
fn pf_is_consistent_where_evo_is_not() {
    let p = q2_like_problem();
    // PF: the 8-point frontier re-appears within the 16-point frontier.
    let pf8 = ProgressiveFrontier::new(PfVariant::ApproxSequential, PfOptions::default())
        .solve(&p, 8)
        .unwrap();
    let pf16 = ProgressiveFrontier::new(PfVariant::ApproxSequential, PfOptions::default())
        .solve(&p, 16)
        .unwrap();
    for s in &pf8.frontier {
        assert!(
            pf16
                .frontier
                .iter()
                .any(|l| l.f == s.f || udao_core::pareto::dominates(&l.f, &s.f)),
            "PF contradicted itself at {:?}",
            s.f
        );
    }
    // Evo: different budgets give different answers somewhere.
    let e300 = nsga2(&p, 300, &EvoConfig::default());
    let e400 = nsga2(&p, 400, &EvoConfig::default());
    let identical = e300.frontier.iter().all(|a| e400.frontier.iter().any(|b| b.f == a.f));
    assert!(!identical, "NSGA-II runs should disagree across budgets");
}

#[test]
fn pf_survives_a_model_that_poisons_part_of_the_space() {
    // Failure injection: the latency model returns NaN on a slab of the
    // input space (a crashed model-server shard, say). MOGD must treat the
    // region as infeasible and PF must still deliver a frontier from the
    // healthy region.
    let lat: Arc<dyn ObjectiveModel> = Arc::new(FnModel::new(2, |x| {
        if x[0] > 0.45 && x[0] < 0.55 {
            f64::NAN
        } else {
            100.0 + 200.0 * (1.0 - x[0]) + 30.0 * x[1]
        }
    }));
    let cost: Arc<dyn ObjectiveModel> =
        Arc::new(FnModel::new(2, |x| 8.0 + 16.0 * x[0] + 8.0 * x[1]));
    let p = MooProblem::new(2, vec![lat, cost]);
    let run = ProgressiveFrontier::new(PfVariant::ApproxSequential, PfOptions::default())
        .solve(&p, 8)
        .expect("poisoned slab must not sink the whole run");
    assert!(run.frontier.len() >= 3, "got {}", run.frontier.len());
    for pt in &run.frontier {
        assert!(pt.f.iter().all(|v| v.is_finite()), "no NaN leaks into the frontier");
    }
}

#[test]
fn methods_handle_a_constant_objective_gracefully() {
    // Degenerate input: one objective is constant, so the Utopia-Nadir box
    // is flat in that dimension. Nothing should panic or spin.
    let lat: Arc<dyn ObjectiveModel> =
        Arc::new(FnModel::new(2, |x| 100.0 + 50.0 * (1.0 - x[0])));
    let flat: Arc<dyn ObjectiveModel> = Arc::new(FnModel::new(2, |_| 7.0));
    let p = MooProblem::new(2, vec![lat, flat]);
    let run = ProgressiveFrontier::new(PfVariant::ApproxSequential, PfOptions::default())
        .solve(&p, 6)
        .expect("flat dimension is fine");
    assert!(!run.frontier.is_empty());
    // Flat-dimension frontier collapses to the single latency optimum.
    assert!(run.frontier.len() <= 2, "got {}", run.frontier.len());
    let ws = weighted_sum(&p, 6, &WsConfig::default());
    assert!(!ws.frontier.is_empty());
    let evo = nsga2(&p, 200, &EvoConfig::default());
    assert!(!evo.frontier.is_empty());
}

#[test]
fn mobo_needs_more_wall_clock_per_point_than_pf() {
    let p = q2_like_problem();
    let t0 = std::time::Instant::now();
    let pf = ProgressiveFrontier::new(PfVariant::ApproxParallel, PfOptions::default())
        .solve(&p, 10)
        .unwrap();
    let pf_time = t0.elapsed().as_secs_f64() / pf.frontier.len().max(1) as f64;
    let t0 = std::time::Instant::now();
    let bo = ehvi::run(&p, 20, &MoboConfig::default());
    let bo_time = t0.elapsed().as_secs_f64() / bo.frontier.len().max(1) as f64;
    assert!(
        bo_time > pf_time,
        "MOBO per-point cost {bo_time} should exceed PF {pf_time}"
    );
}
