//! Property-based tests (proptest) of the core invariants: Pareto
//! dominance, hyperrectangle geometry, parameter-space codecs, and the
//! uncertain-space metric.

use proptest::prelude::*;
use udao_core::hyperrect::Rect;
use udao_core::pareto::{dominates, hypervolume, pareto_filter, uncertain_space, ParetoPoint};
use udao_core::space::{Configuration, ParamSpace, ParamSpec, ParamValue};

fn objective_vec(k: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..100.0, k)
}

proptest! {
    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(f in objective_vec(3), g in objective_vec(3)) {
        prop_assert!(!dominates(&f, &f), "no vector dominates itself");
        prop_assert!(!(dominates(&f, &g) && dominates(&g, &f)), "antisymmetry");
    }

    #[test]
    fn dominance_is_transitive(a in objective_vec(2), b in objective_vec(2), c in objective_vec(2)) {
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c));
        }
    }

    #[test]
    fn filtered_frontiers_are_mutually_non_dominated(
        fs in prop::collection::vec(objective_vec(2), 1..40)
    ) {
        let pts: Vec<ParetoPoint> =
            fs.into_iter().map(|f| ParetoPoint::new(vec![0.0], f)).collect();
        let front = pareto_filter(pts.clone());
        prop_assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                prop_assert!(!dominates(&a.f, &b.f));
            }
        }
        // Every input point is dominated by or equal to some frontier point.
        for p in &pts {
            prop_assert!(front.iter().any(|q| q.f == p.f || dominates(&q.f, &p.f)));
        }
    }

    #[test]
    fn pareto_filter_is_idempotent(
        fs in prop::collection::vec(objective_vec(2), 1..40)
    ) {
        let pts: Vec<ParetoPoint> =
            fs.into_iter().map(|f| ParetoPoint::new(vec![0.0], f)).collect();
        let once = pareto_filter(pts);
        let twice = pareto_filter(once.clone());
        // Filtering an already-filtered frontier must be a no-op.
        prop_assert_eq!(once.len(), twice.len());
        for (a, b) in once.iter().zip(&twice) {
            prop_assert_eq!(&a.f, &b.f);
        }
    }

    #[test]
    fn hypervolume_is_monotone_under_insertion(
        fs in prop::collection::vec(objective_vec(2), 1..20),
        extra in objective_vec(2)
    ) {
        let u = [0.0, 0.0];
        let n = [100.0, 100.0];
        let base = hypervolume(&fs, &u, &n);
        prop_assert!((0.0..=1.0).contains(&base), "fraction of the box: {base}");
        // Adding any point never shrinks the dominated volume...
        let mut grown = fs.clone();
        grown.push(extra.clone());
        let hv_grown = hypervolume(&grown, &u, &n);
        prop_assert!(hv_grown >= base - 1e-12, "{hv_grown} < {base}");
        // ...and adding a *dominated* point leaves it exactly unchanged.
        if fs.iter().any(|f| dominates(f, &extra) || f == &extra) {
            prop_assert!((hv_grown - base).abs() < 1e-12, "dominated insert changed hv");
        }
    }

    #[test]
    fn subdivision_never_gains_volume(
        fm in prop::collection::vec(0.0f64..1.0, 2..4usize)
    ) {
        let k = fm.len();
        let rect = Rect::new(vec![0.0; k], vec![1.0; k]);
        let cells = rect.subdivide(&fm);
        let total: f64 = cells.iter().map(Rect::volume).sum();
        prop_assert!(total <= rect.volume() + 1e-9);
        // The two discarded cells (dominated + empty) account for the gap.
        let discarded: f64 = fm.iter().product::<f64>()
            + fm.iter().map(|v| 1.0 - v).product::<f64>();
        prop_assert!((total + discarded - rect.volume()).abs() < 1e-9);
    }

    #[test]
    fn uncertain_space_is_a_fraction_and_shrinks_with_points(
        fs in prop::collection::vec(objective_vec(2), 1..20)
    ) {
        let u = [0.0, 0.0];
        let n = [100.0, 100.0];
        // Monotonicity is only guaranteed for accumulating *Pareto* sets:
        // a later point dominating an earlier one would invalidate the
        // earlier point's certainty claims. Use the filtered frontier.
        let nd: Vec<Vec<f64>> = udao_core::pareto::non_dominated_indices(&fs)
            .into_iter()
            .map(|i| fs[i].clone())
            .collect();
        let u1 = uncertain_space(&nd[..1], &u, &n);
        let u_all = uncertain_space(&nd, &u, &n);
        prop_assert!((0.0..=1.0).contains(&u_all), "fraction: {u_all}");
        prop_assert!(u_all <= u1 + 1e-9, "more points cannot increase uncertainty");
    }

    #[test]
    fn space_encode_decode_is_stable(
        execs in 2i64..=20,
        frac in 0.2f64..0.9,
        flag in any::<bool>(),
        cat in 0usize..3
    ) {
        let space = ParamSpace::new(vec![
            ParamSpec::integer("executors", 2, 20),
            ParamSpec::continuous("fraction", 0.2, 0.9),
            ParamSpec::boolean("compress"),
            ParamSpec::categorical("serializer", &["java", "kryo", "arrow"]),
        ]).unwrap();
        let c = Configuration::new(vec![
            ParamValue::Int(execs),
            ParamValue::Float(frac),
            ParamValue::Bool(flag),
            ParamValue::Cat(cat),
        ]);
        let x = space.encode(&c).unwrap();
        prop_assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
        let back = space.decode(&x).unwrap();
        // Integers, booleans and categoricals round-trip exactly; floats up
        // to codec precision.
        prop_assert_eq!(&back.values[0], &c.values[0]);
        prop_assert_eq!(&back.values[2], &c.values[2]);
        prop_assert_eq!(&back.values[3], &c.values[3]);
        match (&back.values[1], &c.values[1]) {
            (ParamValue::Float(a), ParamValue::Float(b)) => prop_assert!((a - b).abs() < 1e-9),
            _ => prop_assert!(false, "float knob changed kind"),
        }
    }

    #[test]
    fn snap_is_idempotent_for_any_point(x in prop::collection::vec(0.0f64..=1.0, 6)) {
        let space = ParamSpace::new(vec![
            ParamSpec::integer("a", 0, 7),
            ParamSpec::continuous("b", -1.0, 1.0),
            ParamSpec::boolean("c"),
            ParamSpec::categorical("d", &["x", "y", "z"]),
        ]).unwrap();
        let s1 = space.snap(&x).unwrap();
        let s2 = space.snap(&s1).unwrap();
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn simulator_latency_is_positive_and_cost_monotone(
        execs in 2i64..=29,
        cores in 1i64..=5,
        mem in 1i64..=32,
        parts in 8i64..=1000
    ) {
        use udao_sparksim::{simulate_batch, BatchConf, ClusterSpec, DataflowProgram};
        let conf = BatchConf {
            executor_instances: execs,
            executor_cores: cores,
            executor_memory_gb: mem,
            shuffle_partitions: parts,
            ..BatchConf::spark_default()
        };
        let m = simulate_batch(
            &DataflowProgram::tpcxbb_q2(2_000.0),
            &conf,
            &ClusterSpec::paper_cluster(),
            1,
        );
        prop_assert!(m.latency_s > 0.0);
        prop_assert!(m.cores <= (execs * cores) as f64 + 1e-9);
        prop_assert!(m.cpu_hours > 0.0);
        prop_assert!((0.0..=1.0).contains(&m.cpu_util));
    }

    // Stage-space codec: splitting a flat knob vector into (global,
    // per-stage) blocks and concatenating them back is a bitwise identity,
    // and the per-stage model input is exactly global ++ stage block.
    #[test]
    fn stage_space_split_concat_roundtrips_bitwise(
        n_stages in 1usize..5,
        global_dim in 0usize..3,
        stage_dim in 1usize..3,
        raw in prop::collection::vec(0.0f64..1.0, 16)
    ) {
        use udao_core::stage::StageSpace;
        let global = ParamSpace::new(
            (0..global_dim).map(|i| ParamSpec::continuous(format!("g{i}"), 0.0, 1.0)).collect(),
        ).unwrap();
        let stage = ParamSpace::new(
            (0..stage_dim).map(|i| ParamSpec::continuous(format!("s{i}"), 0.0, 1.0)).collect(),
        ).unwrap();
        let space = StageSpace::new(global, stage, n_stages).unwrap();
        let x = raw[..space.encoded_dim()].to_vec();
        let (g, stages) = space.split(&x).unwrap();
        prop_assert_eq!(g.len(), global_dim);
        prop_assert_eq!(stages.len(), n_stages);
        let back = space.concat(&g, &stages).unwrap();
        for (a, b) in x.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (i, block) in stages.iter().enumerate() {
            let mut want = g.clone();
            want.extend_from_slice(block);
            let input = space.stage_input(&x, i).unwrap();
            prop_assert_eq!(input.len(), want.len());
            for (a, b) in input.iter().zip(&want) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Writing a stage's own block back is a no-op on the flat vector.
        let mut rewritten = x.clone();
        for (i, block) in stages.iter().enumerate() {
            space.write_stage(&mut rewritten, i, block).unwrap();
        }
        space.write_global(&mut rewritten, &g).unwrap();
        prop_assert_eq!(&x, &rewritten);
    }

    // Composed-objective evaluation is *exactly* the DAG fold of
    // independent per-stage model evaluations — no hidden re-weighting,
    // for arbitrary DAGs, surfaces, and knob vectors.
    #[test]
    fn composed_objective_equals_fold_of_per_stage_evals(
        works in prop::collection::vec(0.1f64..4.0, 1..6),
        opts in prop::collection::vec(0.0f64..1.0, 6),
        knobs in prop::collection::vec(0.0f64..1.0, 7),
        dep_bits in 0u32..u32::MAX
    ) {
        use udao_core::objective::ObjectiveModel;
        use udao_core::stage::{Fold, StageDag};
        use udao_sparksim::stages::{StageFixture, StageSurface};
        let n = works.len();
        // A pseudo-random DAG: stage i depends on an arbitrary subset of
        // its predecessors (always acyclic by construction).
        let deps: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..i).filter(|j| dep_bits >> (i * 3 + j) & 1 == 1).collect())
            .collect();
        let fx = StageFixture {
            dag: StageDag::new(deps).unwrap(),
            surfaces: works
                .iter()
                .zip(&opts)
                .map(|(&work, &knob_opt)| StageSurface { work, knob_opt })
                .collect(),
        };
        let space = fx.space();
        let x = knobs[..1 + n].to_vec();
        let (latency, cost) = fx.composed();
        for (composed, models, fold) in [
            (&latency, fx.latency_models(), Fold::CriticalPath),
            (&cost, fx.cost_models(), Fold::Sum),
        ] {
            let per_stage: Vec<f64> = (0..n)
                .map(|i| models[i].predict(&space.stage_input(&x, i).unwrap()))
                .collect();
            let vals = composed.stage_values(&x).unwrap();
            for (a, b) in vals.iter().zip(&per_stage) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            // Composed prediction is exactly the fold of per-stage evals.
            prop_assert_eq!(
                composed.predict(&x).to_bits(),
                fold.fold(&fx.dag, &per_stage).to_bits()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mogd_solutions_satisfy_their_constraints(
        cost_cap in 10.0f64..22.0
    ) {
        use std::sync::Arc;
        use udao_core::mogd::{Mogd, MogdConfig};
        use udao_core::objective::{FnModel, ObjectiveModel};
        use udao_core::solver::{Bound, CoProblem, CoSolver, MooProblem};
        let lat: Arc<dyn ObjectiveModel> =
            Arc::new(FnModel::new(2, |x| 100.0 + 200.0 * (1.0 - x[0]) + 30.0 * x[1]));
        let cost: Arc<dyn ObjectiveModel> =
            Arc::new(FnModel::new(2, |x| 8.0 + 16.0 * x[0] + 8.0 * x[1]));
        let p = MooProblem::new(2, vec![lat, cost]);
        let mogd = Mogd::new(MogdConfig::default());
        let co = CoProblem::constrained(0, vec![Bound::FREE, Bound::new(8.0, cost_cap)]);
        if let Some(sol) = mogd.solve(&p, &co).unwrap() {
            prop_assert!(sol.f[1] <= cost_cap + 0.05, "cost {} cap {}", sol.f[1], cost_cap);
            prop_assert!(sol.x.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    // Coalescer flush equivalence: with enough registered solvers to defeat
    // the single-caller fast path, every prediction is routed through the
    // cross-request batching lane — and must still be bitwise identical to
    // calling the wrapped model directly, for scalar, batch, and std paths.
    #[test]
    fn coalesced_inference_is_bitwise_equal_to_direct(
        raw in prop::collection::vec(0.0f64..1.0, 2..24)
    ) {
        use std::sync::Arc;
        use udao_core::objective::{FnModel, ObjectiveModel};
        use udao_model::{CoalescerOptions, InferenceCoalescer};

        let xs: Vec<Vec<f64>> = raw.chunks_exact(2).map(|c| c.to_vec()).collect();
        let inner: Arc<dyn ObjectiveModel> =
            Arc::new(FnModel::new(2, |x| (7.3 * x[0]).sin() + x[1] * x[1]));
        let co = InferenceCoalescer::new(CoalescerOptions::default());
        let wrapped = co.wrap(Arc::clone(&inner));
        let _g1 = co.register_solver();
        let _g2 = co.register_solver();

        let mut direct = vec![0.0; xs.len()];
        inner.predict_batch(&xs, &mut direct);
        let mut coalesced = vec![0.0; xs.len()];
        wrapped.predict_batch(&xs, &mut coalesced);
        // Batch, scalar, and std flushes must all be bitwise exact.
        for (a, b) in direct.iter().zip(&coalesced) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(inner.predict(&xs[0]).to_bits(), wrapped.predict(&xs[0]).to_bits());
        prop_assert_eq!(
            inner.predict_std(&xs[0]).to_bits(),
            wrapped.predict_std(&xs[0]).to_bits()
        );
    }

    // Adversarial robustness: under models that randomly return NaN/∞,
    // MOGD and PF-AS must never panic, never report a non-finite
    // objective, and never step outside the unit hypercube. A typed
    // error (or an empty result) is acceptable; silent corruption is not.
    #[test]
    fn solvers_stay_finite_and_in_bounds_under_nan_injection(
        nan_rate in 0.05f64..0.5,
        seed in 0u64..u64::MAX
    ) {
        use std::sync::Arc;
        use udao_core::mogd::{Mogd, MogdConfig};
        use udao_core::objective::{FnModel, ObjectiveModel};
        use udao_core::pf::{PfOptions, PfVariant, ProgressiveFrontier};
        use udao_core::solver::{CoProblem, CoSolver, MooProblem};
        use udao_sparksim::{FaultConfig, FaultInjector};

        let inj = FaultInjector::new(FaultConfig { nan_rate, seed, ..Default::default() });
        let lat: Arc<dyn ObjectiveModel> =
            Arc::new(FnModel::new(2, |x| 1.0 / (0.1 + x[0]) + 0.3 * x[1]));
        let cost: Arc<dyn ObjectiveModel> = Arc::new(FnModel::new(2, |x| 1.0 + 9.0 * x[0]));
        let p = MooProblem::new(2, vec![inj.wrap(lat), inj.wrap(cost)]);

        let mogd = Mogd::new(MogdConfig { multistarts: 3, max_iters: 40, ..Default::default() });
        match mogd.solve(&p, &CoProblem::unconstrained(0, 2)) {
            Ok(Some(sol)) => {
                prop_assert!(sol.f.iter().all(|v| v.is_finite()), "{:?}", sol.f);
                prop_assert!(sol.x.iter().all(|v| (0.0..=1.0).contains(v)), "{:?}", sol.x);
            }
            Ok(None) | Err(_) => {}
        }

        let pf = ProgressiveFrontier::new(
            PfVariant::ApproxSequential,
            PfOptions {
                mogd: MogdConfig { multistarts: 3, max_iters: 40, ..Default::default() },
                max_probes: 32,
                ..Default::default()
            },
        );
        if let Ok(run) = pf.solve(&p, 5) {
            for pt in &run.frontier {
                prop_assert!(pt.f.iter().all(|v| v.is_finite()), "{:?}", pt.f);
                prop_assert!(pt.x.iter().all(|v| (0.0..=1.0).contains(v)), "{:?}", pt.x);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // DAG-ordered coordinate descent is invariant under topological-order
    // tie permutations: relabeling stages that share a topo depth (the
    // diamond's two middle stages) permutes the recommended knob vector
    // accordingly and leaves the predicted objectives bitwise unchanged.
    // Dyadic works/optima keep every block argmin on the exact lattice so
    // the comparison can be bitwise rather than tolerance-band.
    #[test]
    fn descent_is_invariant_under_topo_tie_permutations(
        wk in prop::collection::vec(1u32..=16, 4),
        ak in prop::collection::vec(0u32..=32, 4)
    ) {
        use udao::{Fold, StageMode, StageObjectiveSpec, StageRequest, Udao};
        use udao_core::stage::StageDag;
        use udao_sparksim::stages::{StageFixture, StageSurface};
        use udao_sparksim::ClusterSpec;
        let udao = Udao::builder(ClusterSpec::paper_cluster())
            .pf(
                udao_core::pf::PfVariant::ApproxSequential,
                udao_core::pf::PfOptions {
                    mogd: udao_core::mogd::MogdConfig {
                        multistarts: 4,
                        max_iters: 60,
                        ..Default::default()
                    },
                    exact_resolution: 33,
                    ..Default::default()
                },
            )
            .build()
            .unwrap();
        let surf =
            |i: usize| StageSurface { work: wk[i] as f64 / 4.0, knob_opt: ak[i] as f64 / 32.0 };
        // Diamond A and its tie-permuted twin B: stages 1 and 2 share topo
        // depth 1, so swapping their labels is a pure tie permutation.
        let diamond = || StageDag::new(vec![vec![], vec![0], vec![0], vec![1, 2]]).unwrap();
        let fx_a = StageFixture {
            dag: diamond(),
            surfaces: vec![surf(0), surf(1), surf(2), surf(3)],
        };
        let fx_b = StageFixture {
            dag: diamond(),
            surfaces: vec![surf(0), surf(2), surf(1), surf(3)],
        };
        let solve = |fx: &StageFixture| {
            let request = StageRequest::new("tie-perm", fx.dag.clone(), fx.space())
                .objective(StageObjectiveSpec::analytic(
                    "latency",
                    Fold::CriticalPath,
                    fx.latency_models(),
                ))
                .objective(StageObjectiveSpec::analytic("cost", Fold::Sum, fx.cost_models()))
                .points(5)
                .mode(StageMode::Descent);
            udao.recommend_stages(&request).unwrap()
        };
        let rec_a = solve(&fx_a);
        let rec_b = solve(&fx_b);
        for (a, b) in rec_a.predicted.iter().zip(&rec_b.predicted) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // x layout: [global, v0, v1, v2, v3] — B's middle knobs are A's,
        // swapped; everything else is identical.
        let mut permuted = rec_a.x.clone();
        permuted.swap(2, 3);
        prop_assert_eq!(rec_b.x.len(), permuted.len());
        for (a, b) in permuted.iter().zip(&rec_b.x) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
