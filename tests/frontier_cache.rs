//! Cross-request frontier cache: exact hits serve the cached Pareto
//! frontier without touching the solvers, near hits warm-start MOGD and
//! resume PF probing from the cached uncertain space while matching cold
//! frontier quality, and a hot-swap makes every cached entry for the
//! retired weights unreachable on the very next request.

use udao::{BatchRequest, ModelFamily, Udao, UdaoBuilder};
use udao_core::pareto::hypervolume;
use udao_model::dataset::Dataset;
use udao_model::server::ModelKey;
use udao_sparksim::objectives::BatchObjective;
use udao_sparksim::{batch_workloads, ClusterSpec, Workload};

fn quick_pf() -> (udao_core::pf::PfVariant, udao_core::pf::PfOptions) {
    (
        udao_core::pf::PfVariant::ApproxSequential,
        udao_core::pf::PfOptions {
            mogd: udao_core::mogd::MogdConfig { multistarts: 2, max_iters: 25, ..Default::default() },
            max_probes: 4,
            ..Default::default()
        },
    )
}

fn cached_builder(capacity: usize) -> UdaoBuilder {
    let (variant, options) = quick_pf();
    Udao::builder(ClusterSpec::paper_cluster()).pf(variant, options).frontier_cache(capacity)
}

fn q2() -> Workload {
    batch_workloads().into_iter().find(|w| w.id == "q2-v0").expect("q2-v0 exists")
}

fn q2_request(points: usize) -> BatchRequest {
    BatchRequest::new("q2-v0")
        .objective(BatchObjective::Latency)
        .objective(BatchObjective::CostCores)
        .points(points)
}

/// Normalized hypervolume of a recommendation's frontier against shared
/// reference bounds, so two frontiers are comparable on one scale.
fn frontier_hv(frontier: &[udao_core::pareto::ParetoPoint], utopia: &[f64], nadir: &[f64]) -> f64 {
    let fs: Vec<Vec<f64>> = frontier.iter().map(|p| p.f.clone()).collect();
    hypervolume(&fs, utopia, nadir)
}

/// Elementwise (utopia, nadir) envelope over both frontiers, padded so no
/// point sits exactly on the reference boundary.
fn joint_bounds(
    a: &[udao_core::pareto::ParetoPoint],
    b: &[udao_core::pareto::ParetoPoint],
) -> (Vec<f64>, Vec<f64>) {
    let k = a[0].f.len();
    let mut utopia = vec![f64::INFINITY; k];
    let mut nadir = vec![f64::NEG_INFINITY; k];
    for p in a.iter().chain(b) {
        for (j, v) in p.f.iter().enumerate() {
            utopia[j] = utopia[j].min(*v);
            nadir[j] = nadir[j].max(*v);
        }
    }
    for j in 0..k {
        let pad = (nadir[j] - utopia[j]).abs().max(1e-9) * 0.05;
        utopia[j] -= pad;
        nadir[j] += pad;
    }
    (utopia, nadir)
}

/// An identical repeat request is served straight from the cache: the
/// frontier comes back bitwise identical, with zero PF probes and zero
/// model inferences, and the solve report says so.
#[test]
fn exact_hit_serves_the_cached_frontier_without_solving() {
    let udao = cached_builder(32).build().expect("valid options");
    let w = q2();
    udao.train_batch(&w, 40, ModelFamily::Gp, &[BatchObjective::Latency]);

    let first = udao.recommend_batch(&q2_request(4)).expect("cold solve");
    assert_eq!(first.report.cache_served, 0);
    assert_eq!(first.report.cache_warm_starts, 0);
    assert_eq!(first.report.cache_misses, 1, "an enabled cache counts the cold miss");
    assert!(first.probes > 0, "the cold solve actually ran PF");
    let cache = udao.frontier_cache().expect("cache enabled");
    assert_eq!(cache.len(), 1, "the successful primary solve populated the cache");

    let second = udao.recommend_batch(&q2_request(4)).expect("cached solve");
    assert_eq!(second.report.cache_served, 1, "identical request is an exact hit");
    assert_eq!(second.report.cache_misses, 0);
    assert_eq!(second.probes, 0, "a served frontier spends no PF probes");
    assert_eq!(second.report.pf_probes, 0);
    assert_eq!(second.report.mogd_iterations, 0, "no descent on the cached path");
    assert!(!second.degraded);
    assert_eq!(second.frontier.len(), first.frontier.len());
    for (a, b) in first.frontier.iter().zip(&second.frontier) {
        for (va, vb) in a.x.iter().zip(&b.x) {
            assert_eq!(va.to_bits(), vb.to_bits(), "cached frontier configs differ");
        }
        for (va, vb) in a.f.iter().zip(&b.f) {
            assert_eq!(va.to_bits(), vb.to_bits(), "cached frontier objectives differ");
        }
    }
    for (a, b) in first.predicted.iter().zip(&second.predicted) {
        assert_eq!(a.to_bits(), b.to_bits(), "selection from the cached frontier differs");
    }
    assert_eq!(cache.len(), 1, "a hit does not duplicate the entry");
}

/// Weights select from the cached frontier per request: two requests that
/// differ only in preference weights share one cache entry, and the second
/// is served — with its own (possibly different) selection.
#[test]
fn differing_weights_share_one_entry_and_reselect() {
    let udao = cached_builder(32).build().expect("valid options");
    let w = q2();
    udao.train_batch(&w, 40, ModelFamily::Gp, &[BatchObjective::Latency]);

    let lat_heavy =
        udao.recommend_batch(&q2_request(4).weights(vec![0.95, 0.05])).expect("cold solve");
    let cost_heavy =
        udao.recommend_batch(&q2_request(4).weights(vec![0.05, 0.95])).expect("served solve");
    assert_eq!(lat_heavy.report.cache_served, 0);
    assert_eq!(cost_heavy.report.cache_served, 1, "weights are not part of the cache key");
    assert_eq!(udao.frontier_cache().expect("enabled").len(), 1);
    // Both selections come from the same frontier; the latency-heavy
    // request must not predict worse latency than the cost-heavy one.
    assert!(
        lat_heavy.predicted[0] <= cost_heavy.predicted[0] + 1e-9,
        "weighted reselection ignored the preference: {:?} vs {:?}",
        lat_heavy.predicted,
        cost_heavy.predicted
    );
}

/// A near hit (same workload/objectives/constraint cell, different point
/// count) warm-starts MOGD from the cached Pareto configs and resumes PF
/// from the cached uncertain rectangles — and still lands on a frontier
/// whose hypervolume is within 2% of a cold solve on identical weights.
#[test]
fn warm_started_near_hit_matches_cold_frontier_quality() {
    let w = q2();
    let cached = cached_builder(32).build().expect("valid options");
    cached.train_batch(&w, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    // An identically-seeded control instance: everything is deterministic,
    // so its cold solve is exactly what the cached instance would have
    // produced without the cache.
    let (variant, options) = quick_pf();
    let control = Udao::builder(ClusterSpec::paper_cluster())
        .pf(variant, options)
        .build()
        .expect("valid options");
    control.train_batch(&w, 40, ModelFamily::Gp, &[BatchObjective::Latency]);

    let seeded = cached.recommend_batch(&q2_request(6)).expect("cold solve populates cache");
    assert_eq!(seeded.report.cache_misses, 1);

    let warm = cached.recommend_batch(&q2_request(5)).expect("warm-started solve");
    assert_eq!(warm.report.cache_warm_starts, 1, "different point count is a near hit");
    assert_eq!(warm.report.cache_served, 0, "near hits still solve");
    assert!(warm.probes > 0, "the warm start resumes probing, not serving");

    let cold = control.recommend_batch(&q2_request(5)).expect("cold control solve");
    assert_eq!(cold.report.cache_served + cold.report.cache_warm_starts, 0);

    assert!(!warm.frontier.is_empty() && !cold.frontier.is_empty());
    let (utopia, nadir) = joint_bounds(&warm.frontier, &cold.frontier);
    let hv_warm = frontier_hv(&warm.frontier, &utopia, &nadir);
    let hv_cold = frontier_hv(&cold.frontier, &utopia, &nadir);
    assert!(hv_cold > 0.0);
    let ratio = hv_warm / hv_cold;
    assert!(
        ratio >= 0.98,
        "warm-started frontier lost more than 2% hypervolume: warm {hv_warm} vs cold {hv_cold}"
    );
}

/// Model versions are pinned into the cache key: a hot-swap makes every
/// entry built on the retired weights unreachable, so the next request
/// re-solves against the new version and re-populates — it can never be
/// served a frontier computed from retired weights.
#[test]
fn hot_swap_makes_cached_frontiers_unreachable() {
    let udao = cached_builder(32).build().expect("valid options");
    let w = q2();
    udao.train_batch(&w, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    let server = udao.shared_model_server();
    let key = ModelKey::new("q2-v0", "latency");
    assert_eq!(server.current_version(&key), 1);

    let v1 = udao.recommend_batch(&q2_request(4)).expect("solve at v1");
    assert_eq!(v1.report.model_versions, vec![("latency".to_string(), 1)]);
    assert_eq!(udao.recommend_batch(&q2_request(4)).expect("served at v1").report.cache_served, 1);

    // Hot-swap: an (empty) forced retrain republishes and bumps the version.
    assert!(server.retrain_now(&key, &Dataset::default()), "forced retrain publishes");
    assert_eq!(server.current_version(&key), 2);

    let v2 = udao.recommend_batch(&q2_request(4)).expect("solve at v2");
    assert_eq!(v2.report.cache_served, 0, "retired-weight frontier must not be served");
    assert_eq!(v2.report.cache_misses, 1);
    assert_eq!(v2.report.model_versions, vec![("latency".to_string(), 2)]);

    // The v1 entry is unreachable but still resident; the idle prune
    // reclaims it against the registry's current versions.
    let cache = udao.frontier_cache().expect("cache enabled");
    assert_eq!(cache.len(), 2, "stale v1 entry plus fresh v2 entry");
    assert!(udao.prune_idle() >= 1, "prune reclaims the stale entry");
    assert_eq!(cache.len(), 1, "only the current-version entry survives");
    assert_eq!(udao.recommend_batch(&q2_request(4)).expect("served at v2").report.cache_served, 1);
}

/// Degenerate capacities are rejected at build time, and a cacheless build
/// reports no cache activity at all.
#[test]
fn zero_capacity_is_rejected_and_cacheless_builds_stay_silent() {
    assert!(
        Udao::builder(ClusterSpec::paper_cluster()).frontier_cache(0).build().is_err(),
        "capacity 0 must be an InvalidConfig error"
    );
    let (variant, options) = quick_pf();
    let udao = Udao::builder(ClusterSpec::paper_cluster())
        .pf(variant, options)
        .build()
        .expect("valid options");
    assert!(udao.frontier_cache().is_none());
    let w = q2();
    udao.train_batch(&w, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    let rec = udao.recommend_batch(&q2_request(4)).expect("solve");
    let total =
        rec.report.cache_served + rec.report.cache_warm_starts + rec.report.cache_misses;
    assert_eq!(total, 0, "a cacheless instance never counts cache traffic");
}
