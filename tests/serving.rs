//! Concurrency stress tests for the serving engine: response integrity,
//! determinism across worker counts, typed shedding, graceful drain, and
//! per-request report isolation under cross-request inference coalescing.

use std::sync::Arc;
use std::time::Duration;
use udao::{
    BatchRequest, ModelFamily, ModelProvider, ServingEngine, ServingOptions, StreamRequest, Udao,
};
use udao_core::Error;
use udao_model::server::{ModelKey, ModelServer};
use udao_sparksim::objectives::{BatchObjective, StreamObjective};
use udao_sparksim::{batch_workloads, streaming_workloads, ClusterSpec};

fn quick_pf() -> (udao_core::pf::PfVariant, udao_core::pf::PfOptions) {
    (
        udao_core::pf::PfVariant::ApproxSequential,
        udao_core::pf::PfOptions {
            mogd: udao_core::mogd::MogdConfig { multistarts: 4, max_iters: 60, ..Default::default() },
            ..Default::default()
        },
    )
}

/// A trained optimizer for `q2-v0` (latency learned via GP, cost analytic).
fn trained_udao() -> Arc<Udao> {
    let (v, o) = quick_pf();
    let udao = Udao::builder(ClusterSpec::paper_cluster())
        .pf(v, o)
        .build()
        .expect("quick_pf options are valid");
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").expect("q2-v0 exists");
    udao.train_batch(q2, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    Arc::new(udao)
}

fn q2_request(points: usize) -> BatchRequest {
    BatchRequest::new("q2-v0")
        .objective(BatchObjective::Latency)
        .objective(BatchObjective::CostCores)
        .points(points)
}

/// Model provider that simulates a slow remote model server, so solves
/// take long enough for admission control to observe a backlog.
struct SlowProvider {
    inner: Arc<ModelServer>,
    delay: Duration,
}

impl ModelProvider for SlowProvider {
    fn fetch(
        &self,
        key: &ModelKey,
    ) -> udao_core::Result<Option<Arc<dyn udao_core::ObjectiveModel>>> {
        std::thread::sleep(self.delay);
        self.inner.fetch(key)
    }
}

#[test]
fn no_lost_or_duplicated_responses_under_concurrent_load() {
    let udao = trained_udao();
    // Distinct requests (different point budgets) so a misrouted response
    // would be visible as a frontier-size mismatch.
    let variants: Vec<usize> = vec![3, 4, 5, 6, 3, 4, 5, 6];
    let serial: Vec<_> = variants
        .iter()
        .map(|&points| udao.recommend_batch(&q2_request(points)).expect("serial solve"))
        .collect();
    let engine: ServingEngine<BatchObjective> =
        ServingEngine::start_with(Arc::clone(&udao), ServingOptions::default().with_workers(4));
    let handles: Vec<_> = variants
        .iter()
        .map(|&points| engine.submit(q2_request(points)).expect("admitted"))
        .collect();
    // Every handle resolves exactly once, with the answer of *its* request.
    for (handle, baseline) in handles.into_iter().zip(&serial) {
        let rec = handle.wait().expect("engine solve succeeds");
        assert_eq!(rec.frontier.len(), baseline.frontier.len());
        for (a, b) in rec.x.iter().zip(&baseline.x) {
            assert_eq!(a.to_bits(), b.to_bits(), "engine result differs from serial");
        }
    }
    assert_eq!(engine.in_flight(), 0, "all work accounted for");
}

#[test]
fn results_are_bitwise_deterministic_across_worker_counts() {
    let udao = trained_udao();
    let serial = udao.recommend_batch(&q2_request(5)).expect("serial");
    for workers in [1usize, 4] {
        let engine: ServingEngine<BatchObjective> = ServingEngine::start_with(
            Arc::clone(&udao),
            ServingOptions::default().with_workers(workers),
        );
        // Co-tenants running simultaneously must not perturb the answer.
        let handles: Vec<_> =
            (0..4).map(|_| engine.submit(q2_request(5)).expect("admitted")).collect();
        for handle in handles {
            let rec = handle.wait().expect("engine solve succeeds");
            assert_eq!(rec.x.len(), serial.x.len());
            for (a, b) in rec.x.iter().zip(&serial.x) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "recommendation must be bitwise stable at {workers} workers"
                );
            }
            for (a, b) in rec.predicted.iter().zip(&serial.predicted) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

#[test]
fn mixed_batch_and_stream_requests_serve_concurrently() {
    let (v, o) = quick_pf();
    let udao = Udao::builder(ClusterSpec::paper_cluster())
        .pf(v, o)
        .build()
        .expect("valid options");
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").expect("q2-v0 exists");
    udao.train_batch(q2, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    let streams = streaming_workloads();
    let s1 = &streams[0];
    udao.train_streaming(
        s1,
        40,
        ModelFamily::Gp,
        &[StreamObjective::Latency, StreamObjective::Throughput],
    );
    let udao = Arc::new(udao);
    // One optimizer, two typed front doors sharing its coalescer.
    let batch_engine: ServingEngine<BatchObjective> =
        ServingEngine::start_with(Arc::clone(&udao), ServingOptions::default().with_workers(2));
    let stream_engine: ServingEngine<StreamObjective> =
        ServingEngine::start_with(Arc::clone(&udao), ServingOptions::default().with_workers(2));
    let batch_handles: Vec<_> =
        (0..3).map(|_| batch_engine.submit(q2_request(4)).expect("admitted")).collect();
    let stream_req = || {
        StreamRequest::new(s1.id.clone())
            .objective(StreamObjective::Latency)
            .objective(StreamObjective::Throughput)
            .points(4)
    };
    let stream_handles: Vec<_> =
        (0..3).map(|_| stream_engine.submit(stream_req()).expect("admitted")).collect();
    for handle in batch_handles {
        let rec = handle.wait().expect("batch solve");
        assert!(rec.batch_conf.is_some());
        assert!(rec.stream_conf.is_none());
    }
    for handle in stream_handles {
        let rec = handle.wait().expect("stream solve");
        assert!(rec.stream_conf.is_some());
        assert!(rec.batch_conf.is_none());
    }
}

#[test]
fn shutdown_drains_admitted_work_then_rejects_new_submissions() {
    let udao = trained_udao();
    let mut engine: ServingEngine<BatchObjective> =
        ServingEngine::start_with(Arc::clone(&udao), ServingOptions::default().with_workers(2));
    let handles: Vec<_> =
        (0..5).map(|_| engine.submit(q2_request(3)).expect("admitted")).collect();
    engine.shutdown();
    // Everything admitted before the drain still gets a real answer.
    for handle in handles {
        handle.wait().expect("admitted work completes during drain");
    }
    // New work is shed with the typed error, not dropped or panicking.
    match engine.submit(q2_request(3)) {
        Err(Error::Shed { reason, .. }) => assert!(reason.contains("draining"), "{reason}"),
        other => panic!("expected Shed after shutdown, got {other:?}"),
    }
}

#[test]
fn overload_sheds_with_typed_error_and_serves_admitted_requests() {
    let (v, o) = quick_pf();
    let builder = Udao::builder(ClusterSpec::paper_cluster()).pf(v, o);
    let server = builder.shared_model_server();
    let udao = builder
        .model_provider(Arc::new(SlowProvider { inner: server, delay: Duration::from_millis(30) }))
        .build()
        .expect("valid options");
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").expect("q2-v0 exists");
    udao.train_batch(q2, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    let engine: ServingEngine<BatchObjective> = ServingEngine::start_with(
        Arc::new(udao),
        ServingOptions::default().with_workers(1).with_queue_depth(1),
    );
    let mut admitted = Vec::new();
    let mut shed = 0usize;
    for _ in 0..12 {
        match engine.submit(q2_request(3)) {
            Ok(handle) => admitted.push(handle),
            Err(Error::Shed { reason, .. }) => {
                assert!(reason.contains("queue full"), "unexpected shed reason: {reason}");
                shed += 1;
            }
            Err(other) => panic!("overload must shed, not fail: {other}"),
        }
    }
    assert!(shed > 0, "depth-1 queue with 30ms model fetches must shed under a 12-burst");
    assert!(!admitted.is_empty(), "admission control must not shed everything");
    for handle in admitted {
        handle.wait().expect("admitted requests are served to completion");
    }
}

#[test]
fn expired_budget_is_shed_at_admission() {
    let udao = trained_udao();
    let engine: ServingEngine<BatchObjective> =
        ServingEngine::start_with(Arc::clone(&udao), ServingOptions::default().with_workers(1));
    let req = q2_request(3).budget(Duration::ZERO);
    match engine.submit(req) {
        Err(Error::Shed { reason, .. }) => assert!(reason.contains("expired"), "{reason}"),
        other => panic!("zero budget must shed deterministically, got {other:?}"),
    }
}

#[test]
fn per_request_reports_stay_exact_under_engine_concurrency() {
    let udao = trained_udao();
    // Solo baseline: deterministic counters for this request when nothing
    // else is in flight.
    let solo = udao.recommend_batch(&q2_request(5)).expect("solo").report;
    assert!(solo.model_inferences > 0);
    assert!(solo.model_batch_calls > 0);
    let engine: ServingEngine<BatchObjective> =
        ServingEngine::start_with(Arc::clone(&udao), ServingOptions::default().with_workers(4));
    let handles: Vec<_> =
        (0..4).map(|_| engine.submit(q2_request(5)).expect("admitted")).collect();
    for handle in handles {
        let report = handle.wait().expect("engine solve").report;
        // Even with inference batches coalesced across these four solves,
        // each report must attribute exactly the work a solo solve does —
        // no bleed, no absorption.
        assert_eq!(report.mogd_iterations, solo.mogd_iterations);
        assert_eq!(report.mogd_restarts, solo.mogd_restarts);
        assert_eq!(report.pf_probes, solo.pf_probes);
        assert_eq!(report.model_inferences, solo.model_inferences);
        assert_eq!(report.model_batch_calls, solo.model_batch_calls);
        assert_eq!(report.model_cache_hits, solo.model_cache_hits);
        assert_eq!(report.model_cache_misses, solo.model_cache_misses);
    }
}
