//! Fault-injection integration tests: the optimizer must survive poisoned
//! models, dropped lookups, injected latency, and panicking workers, and
//! still return a valid (possibly degraded) recommendation.
//!
//! Each scenario drives `recommend_batch` / `recommend_streaming` through a
//! [`FaultInjector`] installed at the [`ModelProvider`] seam, with every
//! fault rate at or above 10%, and asserts the request still ends in
//! `Ok(Recommendation)` with a mutually non-dominated frontier.

use std::sync::Arc;
use std::time::{Duration, Instant};
use udao::{
    BatchRequest, FallbackStage, ModelFamily, ModelProvider, Recommendation, ResilienceOptions,
    StreamRequest, Udao,
};
use udao_core::mogd::MogdConfig;
use udao_core::pareto::dominates;
use udao_core::pf::{PfOptions, PfVariant};
use udao_core::{Error, ObjectiveModel, Result};
use udao_model::server::ModelServer;
use udao_model::ModelKey;
use udao_sparksim::objectives::{BatchObjective, StreamObjective};
use udao_sparksim::{
    batch_workloads, streaming_workloads, ClusterSpec, FaultConfig, FaultInjector,
};

/// A [`ModelProvider`] that routes lookups through the shared in-process
/// model server while subjecting them to an injector's fault plan: lookups
/// may be dropped (transient errors) and every returned model is wrapped so
/// its predictions can go non-finite, sleep, or panic.
struct FaultyProvider {
    server: Arc<ModelServer>,
    injector: Arc<FaultInjector>,
}

impl ModelProvider for FaultyProvider {
    fn fetch(&self, key: &ModelKey) -> Result<Option<Arc<dyn ObjectiveModel>>> {
        if let Some(msg) = self.injector.lookup_fault() {
            return Err(Error::ModelUnavailable(msg));
        }
        Ok(self.server.get(key).map(|m| self.injector.wrap(m)))
    }
}

/// Build an optimizer with trained latency models for `workload_id`, then
/// interpose `faults` between the optimizer and its model server.
fn faulty_udao(
    workload_id: &str,
    variant: PfVariant,
    faults: FaultConfig,
    resilience: ResilienceOptions,
) -> (Udao, Arc<FaultInjector>) {
    let builder = Udao::builder(ClusterSpec::paper_cluster()).pf(
        variant,
        PfOptions {
            mogd: MogdConfig { multistarts: 4, max_iters: 60, alpha: 1.0, ..Default::default() },
            threads: 2,
            ..Default::default()
        },
    );
    let injector = FaultInjector::new(faults);
    // The builder exposes the model server before `build`, so the faulty
    // provider can wrap the very server training will write into.
    let provider =
        FaultyProvider { server: builder.shared_model_server(), injector: Arc::clone(&injector) };
    let udao = builder
        .model_provider(Arc::new(provider))
        .resilience(resilience)
        .build()
        .expect("valid fault-injection options");
    let workloads = batch_workloads();
    let w = workloads.iter().find(|w| w.id == workload_id).unwrap();
    udao.train_batch(w, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    (udao, injector)
}

fn latency_cost_request(id: &str) -> BatchRequest {
    BatchRequest::new(id)
        .objective(BatchObjective::Latency)
        .objective(BatchObjective::CostCores)
        .points(6)
}

/// A recommendation is *valid* when it carries a decodable configuration
/// and a non-empty, mutually non-dominated frontier.
fn assert_valid(rec: &Recommendation) {
    assert!(rec.batch_conf.is_some() || rec.stream_conf.is_some());
    assert!(!rec.frontier.is_empty(), "empty frontier");
    assert!(rec.x.iter().all(|v| v.is_finite()), "non-finite configuration {:?}", rec.x);
    for (i, a) in rec.frontier.iter().enumerate() {
        for (j, b) in rec.frontier.iter().enumerate() {
            if i != j {
                assert!(
                    !dominates(&a.f, &b.f),
                    "frontier point {:?} dominates {:?}",
                    a.f,
                    b.f
                );
            }
        }
    }
}

#[test]
fn nan_models_still_yield_a_recommendation() {
    let (udao, injector) = faulty_udao(
        "q1-v0",
        PfVariant::ApproxSequential,
        FaultConfig { nan_rate: 0.2, seed: 11, ..Default::default() },
        ResilienceOptions::default(),
    );
    let rec = udao
        .recommend_batch(&latency_cost_request("q1-v0"))
        .expect("NaN-poisoned models must degrade, not fail");
    assert_valid(&rec);
    assert!(rec.predicted.iter().all(|v| v.is_finite()), "{:?}", rec.predicted);
    assert!(injector.counts().nans > 0, "no NaN was actually injected");
}

#[test]
fn dropped_lookups_are_retried_and_absorbed() {
    let (udao, injector) = faulty_udao(
        "q2-v0",
        PfVariant::ApproxSequential,
        FaultConfig { drop_rate: 0.3, seed: 5, ..Default::default() },
        // Even a lookup whose every retry drops must degrade, not fail.
        ResilienceOptions::default().with_cold_start_analytic(),
    );
    let req = latency_cost_request("q2-v0");
    for round in 0..5 {
        let rec = udao
            .recommend_batch(&req)
            .unwrap_or_else(|e| panic!("round {round} failed: {e}"));
        assert_valid(&rec);
    }
    assert!(injector.counts().drops > 0, "no lookup was actually dropped");
}

#[test]
fn cold_start_degrades_to_heuristics_when_enabled() {
    // No training at all: every learned objective is a cold start.
    let udao = Udao::builder(ClusterSpec::paper_cluster())
        .resilience(ResilienceOptions::default().with_cold_start_analytic())
        .build()
        .expect("valid options");
    let rec = udao
        .recommend_batch(&latency_cost_request("q5-v0"))
        .expect("cold start must fall back to heuristic priors");
    assert_valid(&rec);
    assert!(rec.degraded, "heuristic answer must be flagged degraded");

    let srec = udao
        .recommend_streaming(
            &StreamRequest::new(streaming_workloads()[0].id.clone())
                .objective(StreamObjective::Latency)
                .objective(StreamObjective::CostCores)
                .points(6),
        )
        .expect("streaming cold start must fall back too");
    assert_valid(&srec);
    assert!(srec.degraded);
}

#[test]
fn cold_start_without_degradation_is_a_clear_error() {
    let udao = Udao::new(ClusterSpec::paper_cluster());
    let err = udao.recommend_batch(&latency_cost_request("q5-v0")).unwrap_err();
    assert!(err.to_string().contains("no trained model"), "{err}");
}

#[test]
fn slow_models_respect_the_request_budget() {
    let budget = Duration::from_millis(250);
    let (udao, injector) = faulty_udao(
        "q3-v0",
        PfVariant::ApproxSequential,
        FaultConfig {
            slow_rate: 0.3,
            latency: Duration::from_millis(2),
            seed: 23,
            ..Default::default()
        },
        ResilienceOptions::default().with_budget(budget),
    );
    let started = Instant::now();
    let rec = udao
        .recommend_batch(&latency_cost_request("q3-v0"))
        .expect("slow models must yield best-so-far, not hang");
    let elapsed = started.elapsed();
    assert_valid(&rec);
    assert!(injector.counts().delays > 0, "no latency was actually injected");
    // Deadlines are cooperative: allow slack for the solver block in
    // flight when the budget expires, but rule out unbounded overrun.
    assert!(elapsed < budget + Duration::from_secs(5), "took {elapsed:?}");
}

#[test]
fn panicking_workers_are_absorbed_by_the_ladder() {
    let (udao, injector) = faulty_udao(
        "q6-v0",
        PfVariant::ApproxParallel,
        FaultConfig { panic_rate: 0.15, seed: 41, ..Default::default() },
        ResilienceOptions::default(),
    );
    let rec = udao
        .recommend_batch(&latency_cost_request("q6-v0"))
        .expect("panicking models must be isolated, not fatal");
    assert_valid(&rec);
    assert!(injector.counts().panics > 0, "no panic was actually injected");
    // With panics at 15% every solver stage is overwhelmingly likely to
    // lose at least one worker, so the answer cannot be pristine.
    assert!(rec.degraded, "a panic-ridden solve must be flagged degraded");
    assert!(rec.stage >= FallbackStage::Primary);
}

#[test]
fn all_faults_at_once_cannot_break_the_serving_path() {
    let budget = Duration::from_millis(500);
    for seed in [1u64, 2, 3] {
        let (udao, injector) = faulty_udao(
            "q7-v0",
            PfVariant::ApproxParallel,
            FaultConfig {
                nan_rate: 0.1,
                slow_rate: 0.1,
                latency: Duration::from_millis(1),
                drop_rate: 0.1,
                panic_rate: 0.1,
                seed,
            },
            ResilienceOptions::default().with_budget(budget).with_cold_start_analytic(),
        );
        let started = Instant::now();
        let rec = udao
            .recommend_batch(&latency_cost_request("q7-v0"))
            .unwrap_or_else(|e| panic!("seed {seed}: chaos broke the serving path: {e}"));
        assert_valid(&rec);
        assert!(started.elapsed() < budget + Duration::from_secs(10));
        let counts = injector.counts();
        assert!(
            counts.nans + counts.delays + counts.drops + counts.panics > 0,
            "seed {seed}: chaos run injected nothing"
        );
    }
}

#[test]
fn streaming_requests_survive_fault_injection() {
    let builder = Udao::builder(ClusterSpec::paper_cluster()).pf(
        PfVariant::ApproxSequential,
        PfOptions {
            mogd: MogdConfig { multistarts: 4, max_iters: 60, alpha: 1.0, ..Default::default() },
            ..Default::default()
        },
    );
    let injector = FaultInjector::new(FaultConfig {
        nan_rate: 0.15,
        panic_rate: 0.1,
        seed: 77,
        ..Default::default()
    });
    let provider =
        FaultyProvider { server: builder.shared_model_server(), injector: Arc::clone(&injector) };
    let udao = builder
        .model_provider(Arc::new(provider))
        .resilience(ResilienceOptions::default().with_cold_start_analytic())
        .build()
        .expect("valid options");
    let workloads = streaming_workloads();
    let w = &workloads[0];
    udao.train_streaming(w, 40, ModelFamily::Gp, &[StreamObjective::Latency]);
    let rec = udao
        .recommend_streaming(
            &StreamRequest::new(w.id.clone())
                .objective(StreamObjective::Latency)
                .objective(StreamObjective::CostCores)
                .points(6),
        )
        .expect("faulty streaming models must degrade, not fail");
    assert_valid(&rec);
    let counts = injector.counts();
    assert!(counts.nans + counts.panics > 0, "nothing was injected");
}
