//! End-to-end integration tests spanning every crate: traces → model
//! server → Progressive Frontier → recommendation → simulated execution.

use udao::{BatchRequest, ModelFamily, StreamRequest, Udao};
use udao_core::mogd::MogdConfig;
use udao_core::pf::{PfOptions, PfVariant};
use udao_sparksim::objectives::{BatchObjective, StreamObjective};
use udao_sparksim::{batch_workloads, streaming_workloads, ClusterSpec};

fn quick_udao() -> Udao {
    Udao::builder(ClusterSpec::paper_cluster())
        .pf(
            PfVariant::ApproxSequential,
            PfOptions {
                // alpha = 1: conservative optimization under model uncertainty.
                mogd: MogdConfig {
                    multistarts: 4,
                    max_iters: 60,
                    alpha: 1.0,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .build()
        .expect("valid options")
}

#[test]
fn batch_pipeline_beats_the_spark_default_on_latency_preference() {
    let udao = quick_udao();
    let workloads = batch_workloads();
    let w = workloads.iter().find(|w| w.id == "q9-v0").unwrap();
    udao.train_batch(w, 60, ModelFamily::Gp, &[BatchObjective::Latency]);

    let rec = udao
        .recommend_batch(
            &BatchRequest::new("q9-v0")
                .objective(BatchObjective::Latency)
                .objective_bounded(BatchObjective::CostCores, 4.0, 58.0)
                .weights(vec![0.9, 0.1])
                .points(10),
        )
        .unwrap();

    let tuned = udao.measure_batch(w, rec.batch_conf.as_ref().unwrap(), 0).expect("simulatable workload");
    let default = udao.measure_batch(w, &udao_sparksim::BatchConf::spark_default(), 0).expect("simulatable workload");
    assert!(
        tuned.latency_s < default.latency_s,
        "tuned {} vs spark default {}",
        tuned.latency_s,
        default.latency_s
    );
}

#[test]
fn constraints_are_respected_by_the_recommendation() {
    let udao = quick_udao();
    let workloads = batch_workloads();
    let w = workloads.iter().find(|w| w.id == "q6-v0").unwrap();
    udao.train_batch(w, 60, ModelFamily::Gp, &[BatchObjective::Latency]);

    let rec = udao
        .recommend_batch(
            &BatchRequest::new("q6-v0")
                .objective(BatchObjective::Latency)
                .objective_bounded(BatchObjective::CostCores, 4.0, 20.0)
                .points(8),
        )
        .unwrap();
    let conf = rec.batch_conf.unwrap();
    assert!(
        (4..=20).contains(&conf.total_cores()),
        "cores {} outside [4, 20]",
        conf.total_cores()
    );
}

#[test]
fn dnn_models_work_end_to_end_like_gp_models() {
    let udao = quick_udao();
    let workloads = batch_workloads();
    let w = workloads.iter().find(|w| w.id == "q1-v0").unwrap();
    udao.train_batch(w, 50, ModelFamily::Dnn, &[BatchObjective::Latency]);

    let rec = udao
        .recommend_batch(
            &BatchRequest::new("q1-v0")
                .objective(BatchObjective::Latency)
                .objective(BatchObjective::CostCores)
                .points(8),
        )
        .unwrap();
    assert!(rec.frontier.len() >= 2);
    assert!(rec.predicted[0].is_finite());
}

#[test]
fn streaming_pipeline_keeps_the_job_stable() {
    let udao = quick_udao();
    let workloads = streaming_workloads();
    let w = &workloads[3];
    udao.train_streaming(
        w,
        60,
        ModelFamily::Gp,
        &[StreamObjective::Latency, StreamObjective::Throughput],
    );
    let rec = udao
        .recommend_streaming(
            &StreamRequest::new(w.id.clone())
                .objective(StreamObjective::Latency)
                .objective(StreamObjective::Throughput)
                .weights(vec![0.7, 0.3])
                .points(8),
        )
        .unwrap();
    let m = udao.measure_streaming(w, rec.stream_conf.as_ref().unwrap(), 0).expect("simulatable workload");
    assert!(m.stable, "latency-favoring recommendation must keep up with load");
}

#[test]
fn model_server_updates_flow_into_new_recommendations() {
    // Retraining with many more traces must not break recommendation.
    let udao = quick_udao();
    let workloads = batch_workloads();
    let w = workloads.iter().find(|w| w.id == "q3-v0").unwrap();
    udao.train_batch(w, 30, ModelFamily::Gp, &[BatchObjective::Latency]);
    let r1 = udao
        .recommend_batch(
            &BatchRequest::new("q3-v0")
                .objective(BatchObjective::Latency)
                .objective(BatchObjective::CostCores)
                .points(6),
        )
        .unwrap();
    udao.train_batch(w, 250, ModelFamily::Gp, &[BatchObjective::Latency]);
    let r2 = udao
        .recommend_batch(
            &BatchRequest::new("q3-v0")
                .objective(BatchObjective::Latency)
                .objective(BatchObjective::CostCores)
                .points(6),
        )
        .unwrap();
    assert!(r1.predicted[0].is_finite() && r2.predicted[0].is_finite());
    let (retrains, _) = udao
        .model_server()
        .training_stats(&udao_model::ModelKey::new("q3-v0", "latency"));
    assert!(retrains >= 2, "large trace update should retrain: {retrains}");
}

#[test]
fn recommendations_are_reproducible() {
    let udao = quick_udao();
    let workloads = batch_workloads();
    let w = workloads.iter().find(|w| w.id == "q12-v0").unwrap();
    udao.train_batch(w, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    let req = BatchRequest::new("q12-v0")
        .objective(BatchObjective::Latency)
        .objective(BatchObjective::CostCores)
        .points(6);
    let a = udao.recommend_batch(&req).unwrap();
    let b = udao.recommend_batch(&req).unwrap();
    assert_eq!(a.x, b.x, "same models + same request => same recommendation");
}
