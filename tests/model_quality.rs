//! Model-quality integration tests: learned models trained on simulator
//! traces must predict held-out configurations well enough to drive
//! optimization (the Expt 4/5 accuracy regime: DNN ~20% WMAPE, GP ~35%).

use udao_model::dataset::{wmape, Dataset};
use udao_model::gp::{Gp, GpConfig};
use udao_model::mlp::{Ensemble, MlpConfig};
use udao_core::ObjectiveModel;
use udao_sparksim::objectives::BatchObjective;
use udao_sparksim::trace::{batch_training_data, collect_batch_traces, SamplingStrategy};
use udao_sparksim::{batch_workloads, ClusterSpec};

fn latency_dataset(workload_idx: usize, n: usize) -> Dataset {
    let workloads = batch_workloads();
    let w = &workloads[workload_idx];
    let traces =
        collect_batch_traces(w, &ClusterSpec::paper_cluster(), n, SamplingStrategy::Random, 42);
    let (x, y) = batch_training_data(&traces, BatchObjective::Latency);
    Dataset::new(x, y)
}

#[test]
fn gp_predicts_heldout_latency_within_paper_error_band() {
    // As in production: latency is learned in log space (positive,
    // heavy-tailed target) and served through the exp transform.
    let data = latency_dataset(9, 150);
    let (train, test) = data.split(0.8, 7);
    let log_train =
        Dataset::new(train.x.clone(), train.y.iter().map(|v| v.ln()).collect());
    let gp = udao_model::transform::LogSpace(
        Gp::fit(&log_train, &GpConfig::default()).expect("GP fits"),
    );
    let preds: Vec<f64> = test.x.iter().map(|x| gp.predict(x)).collect();
    let err = wmape(&test.y, &preds);
    assert!(err < 0.40, "GP WMAPE {err} exceeds the paper's ~35% band");
}

#[test]
fn dnn_ensemble_beats_the_gp_band() {
    let data = latency_dataset(9, 150);
    let (train, test) = data.split(0.8, 7);
    let cfg = MlpConfig { hidden: vec![48, 48], epochs: 300, ..Default::default() };
    let ens = Ensemble::fit(&train, &cfg, 3).expect("ensemble fits");
    let preds: Vec<f64> = test.x.iter().map(|x| ens.predict(x)).collect();
    let err = wmape(&test.y, &preds);
    assert!(err < 0.35, "DNN WMAPE {err} should beat the GP band");
}

#[test]
fn models_capture_the_resource_latency_trend() {
    // Both model families must learn that more executors lower latency:
    // compare predictions at the encoded extremes of the executor knob.
    let data = latency_dataset(30, 150);
    let gp = Gp::fit(&data, &GpConfig::default()).expect("fits");
    let space = udao_sparksim::BatchConf::space();
    let mut lo_conf = udao_sparksim::BatchConf::spark_default();
    lo_conf.executor_instances = 2;
    lo_conf.executor_cores = 1;
    let mut hi_conf = lo_conf.clone();
    hi_conf.executor_instances = 24;
    hi_conf.executor_cores = 4;
    let lo = gp.predict(&space.encode(&lo_conf.to_configuration()).unwrap());
    let hi = gp.predict(&space.encode(&hi_conf.to_configuration()).unwrap());
    assert!(hi < lo, "more resources must predict lower latency: {hi} vs {lo}");
}

#[test]
fn uncertainty_is_higher_off_the_training_manifold() {
    // Heuristic sampling stays in practitioner ranges; a far-out random
    // config must carry more predictive variance.
    let workloads = batch_workloads();
    let w = &workloads[9];
    let traces = collect_batch_traces(
        w,
        &ClusterSpec::paper_cluster(),
        120,
        SamplingStrategy::Heuristic,
        42,
    );
    let (x, y) = batch_training_data(&traces, BatchObjective::Latency);
    let gp = Gp::fit(&Dataset::new(x.clone(), y), &GpConfig::default()).expect("fits");
    let on_manifold = gp.predict_std(&x[0]);
    let space = udao_sparksim::BatchConf::space();
    let extreme = udao_sparksim::BatchConf {
        executor_instances: 29,
        executor_cores: 5,
        executor_memory_gb: 32,
        memory_fraction: 0.2,
        shuffle_partitions: 1000,
        default_parallelism: 512,
        ..udao_sparksim::BatchConf::spark_default()
    };
    let off_manifold = gp.predict_std(&space.encode(&extreme.to_configuration()).unwrap());
    assert!(
        off_manifold > on_manifold,
        "off-manifold std {off_manifold} should exceed on-manifold {on_manifold}"
    );
}

#[test]
fn lasso_selects_resource_knobs_as_important_for_latency() {
    let data = latency_dataset(9, 200);
    let ranking = udao_model::features::lasso_path_ranking(&data.x, &data.y, 24);
    // Encoded dims: 1 = executor.instances, 2 = executor.cores. At least
    // one of the two resource knobs must rank in the top half.
    let pos = |d: usize| ranking.iter().position(|&r| r == d).unwrap();
    let best_resource = pos(1).min(pos(2));
    assert!(
        best_resource < ranking.len() / 2,
        "resource knobs rank too low: {ranking:?}"
    );
}
