//! Online model lifecycle chaos suite: a swap storm of engine requests
//! racing continuous retrain/swap cycles, drift-triggered retraining
//! observed within one request cycle, and proof that serving never blocks
//! behind a retrain in flight.
//!
//! The central invariant: a solve pins its model versions **once**, at
//! admission, and the whole descent runs against exactly those weights.
//! The swap storm checks it end to end — every `SolveReport` names exactly
//! one version per learned key, no report ever counts a stale serve (the
//! registry's torn-read tripwire), and each recommendation is bitwise
//! identical to a serial replay against its pinned versions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use udao::{
    BatchRequest, ClassQuotas, LifecycleOptions, ModelFamily, ModelProvider, ServingEngine,
    ServingOptions, Udao,
};
use udao_core::ObjectiveModel;
use udao_model::dataset::Dataset;
use udao_model::drift::DriftOptions;
use udao_model::server::{ModelKey, ModelKind, ModelLease, ModelServer};
use udao_sparksim::fault::{FaultConfig, FaultInjector};
use udao_sparksim::objectives::BatchObjective;
use udao_sparksim::{batch_workloads, ClusterSpec};

fn quick_pf() -> (udao_core::pf::PfVariant, udao_core::pf::PfOptions) {
    (
        udao_core::pf::PfVariant::ApproxSequential,
        udao_core::pf::PfOptions {
            mogd: udao_core::mogd::MogdConfig { multistarts: 2, max_iters: 25, ..Default::default() },
            max_probes: 4,
            ..Default::default()
        },
    )
}

fn storm_key() -> ModelKey {
    ModelKey::new("q2-v0", "latency")
}

fn q2_request(points: usize) -> BatchRequest {
    BatchRequest::new("q2-v0")
        .objective(BatchObjective::Latency)
        .objective(BatchObjective::CostCores)
        .points(points)
}

/// Full-size storm unless `CHECK_FAST=1` asks for the smoke-sized run.
fn storm_size() -> usize {
    if std::env::var("CHECK_FAST").map(|v| v == "1").unwrap_or(false) {
        240
    } else {
        1000
    }
}

/// Provider that serves real versioned leases from the model server while
/// recording every `(key, version) → model` snapshot it ever hands out, so
/// a serial replay can later re-solve any request against the exact
/// weights its storm-time solve pinned.
struct RecordingProvider {
    inner: Arc<ModelServer>,
    seen: Mutex<HashMap<(ModelKey, u64), Arc<dyn ObjectiveModel>>>,
}

impl ModelProvider for RecordingProvider {
    fn fetch(&self, key: &ModelKey) -> udao_core::Result<Option<Arc<dyn ObjectiveModel>>> {
        Ok(self.inner.get(key))
    }

    fn lease(&self, key: &ModelKey) -> udao_core::Result<Option<ModelLease>> {
        let lease = self.inner.lease(key);
        if let Some(l) = &lease {
            self.seen
                .lock()
                .unwrap()
                .entry((key.clone(), l.version))
                .or_insert_with(|| Arc::clone(&l.model));
        }
        Ok(lease)
    }
}

/// Provider that replays recorded version snapshots: `pin` names the exact
/// version each key must serve (set per replayed request).
struct PinnedProvider {
    seen: Mutex<HashMap<(ModelKey, u64), Arc<dyn ObjectiveModel>>>,
    pin: Mutex<HashMap<ModelKey, u64>>,
}

impl ModelProvider for PinnedProvider {
    fn fetch(&self, key: &ModelKey) -> udao_core::Result<Option<Arc<dyn ObjectiveModel>>> {
        Ok(self.lease(key)?.map(|l| l.model))
    }

    fn lease(&self, key: &ModelKey) -> udao_core::Result<Option<ModelLease>> {
        let Some(version) = self.pin.lock().unwrap().get(key).copied() else {
            return Ok(None);
        };
        let model = self.seen.lock().unwrap().get(&(key.clone(), version)).cloned();
        Ok(model.map(|model| ModelLease { model, version }))
    }
}

/// A small trace batch for the storm's retrain mill. The perturbation is
/// drawn from the seeded `sparksim::fault` sequence, so every run of the
/// storm retrains on the same drifting ground truth.
fn storm_batch(injector: &FaultInjector, dim: usize, round: u64) -> Dataset {
    // Each `lookup_fault` is one seeded coin flip (drop_rate = 0.5).
    let slope = if injector.lookup_fault().is_some() { 5.5 } else { 4.5 };
    let shift = if injector.lookup_fault().is_some() { 2.0 } else { 3.0 };
    let x: Vec<Vec<f64>> = (0..2)
        .map(|p| {
            (0..dim)
                .map(|j| {
                    let v = (round.wrapping_mul(31) + p * 7 + j as u64 * 13) % 97;
                    v as f64 / 96.0
                })
                .collect()
        })
        .collect();
    let y: Vec<f64> =
        x.iter().map(|r| shift + slope * r.iter().sum::<f64>() / dim as f64).collect();
    Dataset::new(x, y)
}

/// The tentpole chaos test: ≥1k engine requests race a continuous
/// retrain/swap mill. Every report must name exactly one pinned version
/// for the learned key, never count a stale serve, and replay bitwise
/// against its pinned weights; afterwards every retired version must be
/// reclaimed.
#[test]
fn swap_storm_pins_one_version_per_request_and_replays_bitwise() {
    let n = storm_size();
    let (variant, options) = quick_pf();
    let builder = Udao::builder(ClusterSpec::paper_cluster()).pf(variant, options);
    let server = builder.shared_model_server();
    let recording = Arc::new(RecordingProvider {
        inner: Arc::clone(&server),
        seen: Mutex::new(HashMap::new()),
    });
    let udao = builder
        .model_provider(Arc::clone(&recording) as Arc<dyn ModelProvider>)
        .build()
        .expect("quick_pf options are valid");
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").expect("q2-v0 exists");
    udao.train_batch(q2, 24, ModelFamily::Gp, &[BatchObjective::Latency]);
    let key = storm_key();
    let dim = server.lease(&key).expect("trained").model.dim();
    let udao = Arc::new(udao);

    // The retrain mill: two threads continuously ingest fault-seeded trace
    // batches and force hot-swaps while the engine serves. The archive is
    // capped so GP refits stay cheap; once full the mill keeps swapping
    // (empty batches still bump the version) at the same cadence.
    let stop = Arc::new(AtomicBool::new(false));
    let mill: Vec<_> = (0..2u64)
        .map(|t| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let key = key.clone();
            std::thread::spawn(move || {
                let injector = FaultInjector::new(FaultConfig {
                    drop_rate: 0.5,
                    seed: 0xC0FF_EE00 + t,
                    ..Default::default()
                });
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let batch = if server.trace_count(&key) < 80 {
                        storm_batch(&injector, dim, round)
                    } else {
                        Dataset::default()
                    };
                    server.retrain_now(&key, &batch);
                    round += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();

    let mut engine: ServingEngine<BatchObjective> = ServingEngine::start_with(
        Arc::clone(&udao),
        ServingOptions::default()
            .with_workers(4)
            .with_queue_depth(n)
            // The storm floods the whole queue with one (standard) class;
            // the derived per-class quotas would shed the tail, which is
            // not what this suite measures.
            .with_class_quotas(ClassQuotas { interactive: n, standard: n, batch: n }),
    );
    let points_of = |i: usize| 2 + (i % 3);
    let handles: Vec<_> =
        (0..n).map(|i| engine.submit(q2_request(points_of(i))).expect("admitted")).collect();
    let recs: Vec<_> =
        handles.into_iter().map(|h| h.wait().expect("storm solve succeeds")).collect();
    stop.store(true, Ordering::Relaxed);
    for handle in mill {
        handle.join().expect("retrain mill exits cleanly");
    }
    engine.shutdown();

    // Invariants on every single report: no stale serve ever (the registry
    // tripwire would have counted one on any torn read), and exactly one
    // pinned version for the learned latency key.
    let final_version = server.current_version(&key);
    assert!(final_version > 1, "the storm must actually swap (stuck at v{final_version})");
    let mut distinct = std::collections::BTreeSet::new();
    for (i, rec) in recs.iter().enumerate() {
        assert_eq!(rec.report.stale_served, 0, "request {i} served a stale version");
        assert_eq!(
            rec.report.model_versions.len(),
            1,
            "request {i} must pin exactly one learned model, got {:?}",
            rec.report.model_versions
        );
        let (name, version) = &rec.report.model_versions[0];
        assert_eq!(name, "latency");
        assert!(
            *version >= 1 && *version <= final_version,
            "request {i} pinned impossible version {version} (registry at {final_version})"
        );
        distinct.insert(*version);
    }
    assert!(
        distinct.len() >= 2,
        "a {n}-request storm against a continuous mill must observe several versions"
    );

    // Serial replay: re-solve each request against exactly the versions its
    // report names. Bitwise equality proves no solve ever mixed weights
    // from two versions mid-descent.
    let pinned = Arc::new(PinnedProvider {
        seen: Mutex::new(recording.seen.lock().unwrap().clone()),
        pin: Mutex::new(HashMap::new()),
    });
    let (variant, options) = quick_pf();
    let replay = Udao::builder(ClusterSpec::paper_cluster())
        .pf(variant, options)
        .model_provider(Arc::clone(&pinned) as Arc<dyn ModelProvider>)
        .build()
        .expect("quick_pf options are valid");
    for (i, rec) in recs.iter().enumerate() {
        let pins: HashMap<ModelKey, u64> = rec
            .report
            .model_versions
            .iter()
            .map(|(name, version)| (ModelKey::new("q2-v0", name.clone()), *version))
            .collect();
        *pinned.pin.lock().unwrap() = pins;
        let again = replay.recommend_batch(&q2_request(points_of(i))).expect("replay solve");
        assert_eq!(again.frontier.len(), rec.frontier.len(), "request {i} frontier size");
        for (a, b) in rec.x.iter().zip(&again.x) {
            assert_eq!(a.to_bits(), b.to_bits(), "request {i}: x differs from pinned replay");
        }
        for (a, b) in rec.predicted.iter().zip(&again.predicted) {
            assert_eq!(a.to_bits(), b.to_bits(), "request {i}: prediction differs from replay");
        }
        assert_eq!(again.report.model_versions, rec.report.model_versions);
    }

    // Reclamation: once the replay snapshots (the only remaining pins on
    // retired versions) are gone, the registry must hold no retired
    // weights alive.
    recording.seen.lock().unwrap().clear();
    pinned.seen.lock().unwrap().clear();
    drop(replay);
    assert_eq!(
        server.retired_unreclaimed(&key),
        0,
        "retired versions must be reclaimed once the last pin drops"
    );
}

/// Drift closes the loop within one request cycle: a request before the
/// drift pins vN; a drifted observation window then forces a retrain, and
/// the very next request already pins (and reports) vN+1.
#[test]
fn drift_retrain_is_visible_to_the_next_request() {
    let (variant, options) = quick_pf();
    let udao = Udao::builder(ClusterSpec::paper_cluster())
        .pf(variant, options)
        .build()
        .expect("quick_pf options are valid");
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").expect("q2-v0 exists");
    udao.train_batch(q2, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    let key = storm_key();
    let server = udao.shared_model_server();
    assert_eq!(server.current_version(&key), 1);

    let mgr = udao
        .start_lifecycle(LifecycleOptions {
            retrain_batch: 1000, // only the drift path may retrain here
            drift: DriftOptions { window: 8, threshold: 0.3 },
            ..Default::default()
        })
        .expect("lifecycle starts");

    let before = udao.recommend_batch(&q2_request(3)).expect("pre-drift solve");
    assert_eq!(before.report.model_versions, vec![("latency".to_string(), 1)]);

    // Observed reality an order of magnitude off the prediction: one full
    // window is enough evidence to trip the detector.
    for _ in 0..8 {
        assert!(mgr.observe(
            key.clone(),
            before.x.clone(),
            before.predicted[0].abs() * 10.0 + 5.0
        ));
    }
    mgr.flush();
    assert_eq!(mgr.stats().drift_retrains, 1, "one full drifted window, one forced retrain");
    assert_eq!(server.current_version(&key), 2, "the retrain published a new version");
    assert_eq!(server.drift_score(&key), None, "the window resets after firing");

    // Within one request cycle: the very next solve pins the new version
    // (its problem generation changed with it, so no memoized evaluation
    // from v1 can leak into this answer).
    let after = udao.recommend_batch(&q2_request(3)).expect("post-drift solve");
    assert_eq!(after.report.model_versions, vec![("latency".to_string(), 2)]);
    assert_eq!(after.report.stale_served, 0);
}

/// The lifecycle fan-out reclaims cached frontiers: a drift-forced retrain
/// publishes new weights and, in the same publish step, drops every
/// frontier-cache entry pinned to the retired version — the next request
/// is a cold miss against the new model, never a stale serve.
#[test]
fn lifecycle_retrain_invalidates_cached_frontiers() {
    let (variant, options) = quick_pf();
    let udao = Udao::builder(ClusterSpec::paper_cluster())
        .pf(variant, options)
        .frontier_cache(16)
        .build()
        .expect("quick_pf options are valid");
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").expect("q2-v0 exists");
    udao.train_batch(q2, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    let mgr = udao
        .start_lifecycle(LifecycleOptions {
            retrain_batch: 1000, // only the drift path may retrain here
            drift: DriftOptions { window: 8, threshold: 0.3 },
            ..Default::default()
        })
        .expect("lifecycle starts");

    let before = udao.recommend_batch(&q2_request(3)).expect("pre-drift solve");
    let cache = udao.frontier_cache().expect("cache enabled");
    assert_eq!(cache.len(), 1, "the solve cached its frontier");

    for _ in 0..8 {
        assert!(mgr.observe(
            storm_key(),
            before.x.clone(),
            before.predicted[0].abs() * 10.0 + 5.0
        ));
    }
    mgr.flush();
    assert_eq!(mgr.stats().drift_retrains, 1);
    assert_eq!(
        cache.len(),
        0,
        "the publish fan-out must drop frontiers built on the retired weights"
    );
    let after = udao.recommend_batch(&q2_request(3)).expect("post-drift solve");
    assert_eq!(after.report.cache_served, 0, "nothing cached survives the swap");
    assert_eq!(after.report.cache_misses, 1);
    assert_eq!(after.report.model_versions, vec![("latency".to_string(), 2)]);
    assert_eq!(after.report.stale_served, 0);
}

/// Swap-storm variant over the frontier cache: rounds of forced hot-swaps
/// interleaved with repeat requests. Every post-swap request must be a
/// cache miss pinned to the fresh version — across the whole storm the
/// cache never serves a frontier computed from retired weights — while
/// unswapped repeats keep hitting.
#[test]
fn swap_storm_never_serves_frontiers_from_retired_weights() {
    let (variant, options) = quick_pf();
    let udao = Udao::builder(ClusterSpec::paper_cluster())
        .pf(variant, options)
        .frontier_cache(64)
        .build()
        .expect("quick_pf options are valid");
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").expect("q2-v0 exists");
    udao.train_batch(q2, 24, ModelFamily::Gp, &[BatchObjective::Latency]);
    let key = storm_key();
    let server = udao.shared_model_server();
    let dim = server.lease(&key).expect("trained").model.dim();
    let injector = FaultInjector::new(FaultConfig { drop_rate: 0.5, seed: 0xCAC4E, ..Default::default() });

    for round in 0..8u64 {
        let expected_version = server.current_version(&key);
        let cold = udao.recommend_batch(&q2_request(3)).expect("post-swap solve");
        assert_eq!(
            cold.report.cache_served, 0,
            "round {round}: a frontier from retired weights was served"
        );
        assert_eq!(
            cold.report.model_versions,
            vec![("latency".to_string(), expected_version)],
            "round {round}: the miss must pin the live version"
        );
        assert_eq!(cold.report.stale_served, 0);
        let hit = udao.recommend_batch(&q2_request(3)).expect("repeat solve");
        assert_eq!(
            hit.report.cache_served, 1,
            "round {round}: an unswapped repeat must hit the cache"
        );
        // Force the hot-swap for the next round on real drifting traces.
        let batch = if server.trace_count(&key) < 80 {
            storm_batch(&injector, dim, round)
        } else {
            Dataset::default()
        };
        assert!(server.retrain_now(&key, &batch), "round {round}: forced retrain publishes");
        assert_eq!(server.current_version(&key), expected_version + 1);
    }
    // Unreachable retired-version entries are bounded: the idle prune
    // reclaims everything but the live round's frontier.
    let cache = udao.frontier_cache().expect("cache enabled");
    assert!(udao.prune_idle() > 0, "the storm left stale entries to reclaim");
    assert!(cache.len() <= 1, "only the live-version entry may survive the prune");
}

/// Per-stage variant of the cache swap storm: stage-shaped cache entries
/// pin every per-stage learned model version inside their key, so a
/// hot-swap of any *single* stage's model makes the cached frontier
/// unreachable — the next per-stage solve is a cold miss pinned to the
/// fresh version, unswapped repeats keep hitting, and the idle prune
/// reclaims every retired-version stage entry.
#[test]
fn per_stage_swap_storm_invalidates_stage_cache_entries() {
    use udao::{Fold, StageMode, StageObjectiveSpec, StageRequest};
    use udao_sparksim::StageFixture;
    let (variant, options) = quick_pf();
    let udao = Udao::builder(ClusterSpec::paper_cluster())
        .pf(variant, options)
        .frontier_cache(64)
        .build()
        .expect("quick_pf options are valid");
    let fx = StageFixture::chain2();
    let server = udao.shared_model_server();
    // One GP per (stage, objective), keyed `{workload}::stage{i}` exactly
    // as the tuner resolves them; inputs are the stage's (global knob,
    // own knob) block.
    let keys: Vec<ModelKey> = (0..fx.len())
        .flat_map(|i| {
            ["latency", "cost"]
                .map(|name| ModelKey::new(format!("stagestorm::stage{i}"), name))
        })
        .collect();
    let xs: Vec<Vec<f64>> =
        (0..25).map(|k| vec![(k % 5) as f64 / 4.0, (k / 5) as f64 / 4.0]).collect();
    for (j, key) in keys.iter().enumerate() {
        let ys: Vec<f64> =
            xs.iter().map(|r| 1.0 + (j + 1) as f64 * r[0] + 2.0 * r[1] * r[1]).collect();
        server.register(key.clone(), ModelKind::Gp(Default::default()));
        server.ingest(key, &Dataset::new(xs.clone(), ys));
        assert_eq!(server.current_version(key), 1, "seed publish for {key:?}");
    }
    let request = || {
        StageRequest::new("stagestorm", fx.dag.clone(), fx.space())
            .objective(StageObjectiveSpec::learned("latency", Fold::CriticalPath))
            .objective(StageObjectiveSpec::learned("cost", Fold::Sum))
            .points(3)
            .mode(StageMode::Descent)
    };
    let cache = udao.frontier_cache().expect("cache enabled");

    for round in 0..6u64 {
        let cold = udao.recommend_stages(&request()).expect("post-swap solve");
        assert_eq!(
            cold.report.cache_served, 0,
            "round {round}: a stage frontier from retired weights was served"
        );
        assert_eq!(cold.report.stale_served, 0);
        // The report pins one version per (stage, objective), and each one
        // is the registry's live version at admission.
        assert_eq!(cold.report.model_versions.len(), keys.len(), "round {round}");
        for (entry, version) in &cold.report.model_versions {
            let (stage_part, name) = entry.split_once('/').expect("stage-scoped entry");
            let key = ModelKey::new(format!("stagestorm::{stage_part}"), name);
            assert_eq!(
                *version,
                server.current_version(&key),
                "round {round}: {entry} must pin the live version"
            );
        }
        let hit = udao.recommend_stages(&request()).expect("repeat solve");
        assert_eq!(
            hit.report.cache_served, 1,
            "round {round}: an unswapped repeat must hit the stage entry"
        );
        // Hot-swap a single stage model: one version bump is enough to
        // retire the whole composed entry.
        let swap = &keys[(round as usize) % keys.len()];
        assert!(server.retrain_now(swap, &Dataset::default()), "round {round}: swap publishes");
    }
    // Every entry in the cache is now pinned to at least one retired
    // version (the final swap retired the live round's too): the idle
    // prune must reclaim them all, parsing the stage-scoped entry names.
    assert!(udao.prune_idle() > 0, "the storm left stale stage entries to reclaim");
    assert_eq!(cache.len(), 0, "no stage entry may outlive its pinned versions");
}

/// Idle serving workers reclaim stale cache entries on their own: after a
/// hot-swap retires the cached frontier's weights, an idle engine (no
/// further requests) prunes the entry within a few idle periods.
#[test]
fn idle_serving_workers_prune_stale_cache_entries() {
    let (variant, options) = quick_pf();
    let udao = Udao::builder(ClusterSpec::paper_cluster())
        .pf(variant, options)
        .frontier_cache(16)
        .build()
        .expect("quick_pf options are valid");
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").expect("q2-v0 exists");
    udao.train_batch(q2, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    let udao = Arc::new(udao);
    let mut engine: ServingEngine<BatchObjective> = ServingEngine::start_with(
        Arc::clone(&udao),
        ServingOptions::default().with_workers(2),
    );
    let rec = engine.solve(q2_request(3)).expect("engine solve");
    assert_eq!(rec.report.cache_misses, 1);
    let cache = udao.frontier_cache().expect("cache enabled");
    assert_eq!(cache.len(), 1);

    // Retire the weights underneath the cached frontier, then go idle.
    assert!(udao.shared_model_server().retrain_now(&storm_key(), &Dataset::default()));
    let deadline = Instant::now() + Duration::from_secs(5);
    while cache.len() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        cache.len(),
        0,
        "idle workers must reclaim the stale entry without any request traffic"
    );
    engine.shutdown();
}

/// Serving never blocks behind training: while a deliberately large full
/// GP refit grinds on another thread, `lease` keeps answering from the old
/// version with low latency, and the swap lands atomically afterwards.
#[test]
fn lease_never_blocks_behind_a_slow_retrain() {
    let key = ModelKey::new("w", "latency");
    let server = Arc::new(ModelServer::new());
    server.register(key.clone(), ModelKind::Gp(Default::default()));
    let seed: Vec<Vec<f64>> = (0..24).map(|i| vec![i as f64 / 23.0]).collect();
    let seed_y: Vec<f64> = seed.iter().map(|r| 2.0 + 5.0 * r[0]).collect();
    server.ingest(&key, &Dataset::new(seed, seed_y));
    assert_eq!(server.current_version(&key), 1);

    // A big batch makes the Phase-2 (off-lock) Cholesky slow enough that
    // the serving thread demonstrably overlaps it.
    let big: Vec<Vec<f64>> = (0..500).map(|i| vec![(i % 100) as f64 / 99.0 + i as f64 * 1e-5]).collect();
    let big_y: Vec<f64> = big.iter().map(|r| 2.0 + 5.0 * r[0]).collect();
    let big = Dataset::new(big, big_y);
    let training = Arc::new(AtomicBool::new(true));
    let trainer = {
        let server = Arc::clone(&server);
        let key = key.clone();
        let training = Arc::clone(&training);
        std::thread::spawn(move || {
            let published = server.retrain_now(&key, &big);
            training.store(false, Ordering::Release);
            published
        })
    };

    let mut old_version_leases = 0u64;
    let mut last_version = 0u64;
    let mut slowest = Duration::ZERO;
    while training.load(Ordering::Acquire) {
        let started = Instant::now();
        let lease = server.lease(&key).expect("old version keeps serving");
        let took = started.elapsed();
        slowest = slowest.max(took);
        if training.load(Ordering::Acquire) {
            // The publish lands *inside* `retrain_now`, strictly before the
            // trainer clears `training`, so a v2 lease here only means the
            // swap already landed — asserting v1 outright races the store.
            // What must hold: versions move 1 → 2 monotonically (never torn
            // or rolled back), and the slow refit serves the old version
            // throughout — counted below.
            assert!(
                lease.version >= last_version,
                "version rolled back mid-retrain: {} after {last_version}",
                lease.version
            );
            assert!(lease.version <= 2, "impossible version {} during one retrain", lease.version);
            last_version = lease.version;
            if lease.version == 1 {
                old_version_leases += 1;
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    assert!(trainer.join().expect("trainer exits"), "the slow retrain must publish");
    assert!(
        old_version_leases > 0,
        "the refit must be slow enough for the serving thread to lease the old version meanwhile"
    );
    assert!(
        slowest < Duration::from_millis(250),
        "lease stalled {slowest:?} behind an off-lock retrain"
    );
    assert_eq!(server.current_version(&key), 2, "the swap lands after training");
    assert_eq!(server.lease(&key).expect("served").version, 2);
}
