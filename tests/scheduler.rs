//! Scheduler invariants for the SLO-aware serving core.
//!
//! Three layers of checking:
//!
//! 1. A property test drives [`ClassScheduler`] through arbitrary
//!    admit/dispatch interleavings against a brute-force reference model,
//!    so strict class precedence (no priority inversion), EDF-within-class
//!    with FIFO tie-breaks, and the reported reorder counts all stay in
//!    lockstep with the obviously-correct implementation.
//! 2. A drain-order property states the two ordering invariants directly
//!    on the dispatch sequence, independent of the reference model.
//! 3. An engine-level test floods a one-worker [`ServingEngine`] past its
//!    batch-class quota and checks the per-class `serve.shed.*` /
//!    `serve.admitted.*` telemetry counters against the typed errors the
//!    callers actually saw — shed accounting must match, class by class.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};
use udao::{
    BatchRequest, ClassScheduler, ModelFamily, ModelProvider, Priority, ServingEngine,
    ServingOptions, Udao,
};
use udao_core::Error;
use udao_model::server::{ModelKey, ModelServer};
use udao_sparksim::objectives::BatchObjective;
use udao_sparksim::{batch_workloads, ClusterSpec};
use udao_telemetry::{enter_scope, names, MetricsRegistry};

/// One queued entry of the reference model: `(class index, deadline key,
/// arrival sequence, payload id)`. Deadline-less entries carry
/// `u64::MAX` so they order after every real deadline.
type RefEntry = (usize, u64, u64, u64);

/// Brute-force reference scheduler: a flat list scanned on every
/// operation. Slow and obviously correct.
#[derive(Default)]
struct RefSched {
    entries: Vec<RefEntry>,
    seq: u64,
}

impl RefSched {
    /// Admit an entry; returns the reorder count (entries the new one is
    /// ordered ahead of: later-keyed entries of its own class plus
    /// everything queued in lower-urgency classes).
    fn push(&mut self, class: usize, key: u64, id: u64) -> usize {
        let seq = self.seq;
        self.seq += 1;
        let reorders = self
            .entries
            .iter()
            .filter(|&&(c, k, s, _)| c > class || (c == class && (k, s) > (key, seq)))
            .count();
        self.entries.push((class, key, seq, id));
        reorders
    }

    /// Dispatch the minimum of `(class, deadline key, sequence)`.
    fn pop(&mut self) -> Option<(usize, u64)> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, &(c, k, s, _))| (c, k, s))
            .map(|(i, _)| i)?;
        let (class, _, _, id) = self.entries.remove(best);
        Some((class, id))
    }

    fn class_len(&self, class: usize) -> usize {
        self.entries.iter().filter(|&&(c, ..)| c == class).count()
    }
}

/// Decoded scheduler operation.
enum Op {
    Pop,
    /// `(class index, deadline key; u64::MAX = no deadline)`
    Push(usize, u64),
}

/// The vendored proptest shim has no tuple or enum strategies, so each
/// operation travels as one `usize` and is decoded arithmetically: every
/// fifth code is a dispatch, the rest admit into `code % 3` with one of
/// eight deadline slots (slot 0 = no deadline). Repeated slots exercise
/// the FIFO tie-break.
fn decode(code: usize) -> Op {
    if code % 5 == 0 {
        return Op::Pop;
    }
    let class = code % 3;
    let slot = (code / 15) % 8;
    let key = if slot == 0 { u64::MAX } else { slot as u64 };
    Op::Push(class, key)
}

/// Map a reference deadline key onto a real `Instant` for the production
/// scheduler. All real deadlines sit within seconds of `base`, far below
/// the scheduler's internal "no deadline" sentinel.
fn key_to_deadline(base: Instant, key: u64) -> Option<Instant> {
    if key == u64::MAX {
        None
    } else {
        Some(base + Duration::from_secs(key))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The production scheduler agrees with the brute-force reference on
    /// every dispatch, every reorder count, and every queue length, over
    /// arbitrary interleavings of admits and dispatches.
    #[test]
    fn class_scheduler_matches_reference_model(codes in prop::collection::vec(0usize..10_000, 1..200)) {
        let base = Instant::now();
        let mut real: ClassScheduler<u64> = ClassScheduler::new();
        let mut model = RefSched::default();
        let mut next_id = 0u64;
        for code in codes {
            match decode(code) {
                Op::Pop => {
                    let got = real.pop().map(|(class, id)| (class.index(), id));
                    prop_assert_eq!(got, model.pop());
                }
                Op::Push(class_idx, key) => {
                    let id = next_id;
                    next_id += 1;
                    let class = Priority::ALL[class_idx];
                    let deadline = key_to_deadline(base, key);
                    let mut seen_by_make = usize::MAX;
                    let reorders = real.push(class, deadline, |r| {
                        seen_by_make = r;
                        id
                    });
                    // make() must see the same count push() returns.
                    prop_assert_eq!(seen_by_make, reorders);
                    prop_assert_eq!(reorders, model.push(class_idx, key, id));
                }
            }
            prop_assert_eq!(real.len(), model.entries.len());
            for class in Priority::ALL {
                prop_assert_eq!(real.class_len(class), model.class_len(class.index()));
            }
        }
        prop_assert_eq!(real.is_empty(), model.entries.is_empty());
    }

    /// Draining after a burst of admits yields classes in strict urgency
    /// order (no priority inversion) and, within each class, deadlines in
    /// ascending order with deadline-less entries last in arrival order.
    #[test]
    fn drain_order_is_class_then_edf(codes in prop::collection::vec(0usize..10_000, 1..120)) {
        let base = Instant::now();
        let mut sched: ClassScheduler<(u64, u64)> = ClassScheduler::new();
        let mut arrival = 0u64;
        for code in codes {
            if let Op::Push(class_idx, key) = decode(code) {
                let seq = arrival;
                arrival += 1;
                sched.push(Priority::ALL[class_idx], key_to_deadline(base, key), |_| (key, seq));
            }
        }
        let mut drained: Vec<(usize, u64, u64)> = Vec::new();
        while let Some((class, (key, seq))) = sched.pop() {
            drained.push((class.index(), key, seq));
        }
        prop_assert!(sched.is_empty());
        for pair in drained.windows(2) {
            let (ca, ka, sa) = pair[0];
            let (cb, kb, sb) = pair[1];
            // Strict class precedence: never a more-urgent class after a
            // less-urgent one.
            prop_assert!(ca <= cb, "priority inversion: class {} dispatched after {}", cb, ca);
            if ca == cb {
                // EDF within the class; FIFO among equal deadlines and
                // among the deadline-less (key == u64::MAX).
                prop_assert!(
                    (ka, sa) < (kb, sb),
                    "EDF violation in class {}: key {} seq {} before key {} seq {}",
                    ca, ka, sa, kb, sb
                );
            }
        }
    }
}

/// Model provider that simulates a slow remote model server, so the
/// one-worker engine stays busy while the test floods the queue.
struct SlowProvider {
    inner: Arc<ModelServer>,
    delay: Duration,
}

impl ModelProvider for SlowProvider {
    fn fetch(
        &self,
        key: &ModelKey,
    ) -> udao_core::Result<Option<Arc<dyn udao_core::ObjectiveModel>>> {
        std::thread::sleep(self.delay);
        self.inner.fetch(key)
    }
}

fn quick_pf() -> (udao_core::pf::PfVariant, udao_core::pf::PfOptions) {
    (
        udao_core::pf::PfVariant::ApproxSequential,
        udao_core::pf::PfOptions {
            mogd: udao_core::mogd::MogdConfig {
                multistarts: 2,
                max_iters: 30,
                ..Default::default()
            },
            max_probes: 8,
            ..Default::default()
        },
    )
}

fn q2_request(class: Priority) -> BatchRequest {
    BatchRequest::new("q2-v0")
        .objective(BatchObjective::Latency)
        .objective(BatchObjective::CostCores)
        .points(3)
        .priority(class)
}

/// Per-class shed/admit accounting: the typed `Error::Shed` results the
/// callers observe must match the `serve.shed.<class>` and
/// `serve.admitted.<class>` counters exactly, and the per-class counts
/// must sum to the totals. Batch-class flooding past the derived batch
/// quota must not shed a single interactive request.
#[test]
fn shed_accounting_matches_per_class_telemetry() {
    let (v, o) = quick_pf();
    let builder = Udao::builder(ClusterSpec::paper_cluster()).pf(v, o);
    let server = builder.shared_model_server();
    let udao = builder
        .model_provider(Arc::new(SlowProvider {
            inner: server,
            delay: Duration::from_millis(150),
        }))
        .build()
        .expect("quick_pf options are valid");
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").expect("q2-v0 exists");
    udao.train_batch(q2, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    // One worker, depth 6: derived quotas are interactive 6 / standard 4
    // / batch 3, so a 10-burst of batch requests must overflow its quota
    // while interactive headroom stays untouched.
    let engine: ServingEngine<BatchObjective> = ServingEngine::start_with(
        Arc::new(udao),
        ServingOptions::default().with_workers(1).with_queue_depth(6),
    );

    // Admission-path shed/admit counters increment on the submitting
    // thread, so a telemetry scope entered here records exactly this
    // test's submissions — nothing from the worker thread.
    let scope = Arc::new(MetricsRegistry::new());
    let mut admitted = Vec::new();
    let mut admitted_by_class = [0u64; 3];
    let mut shed_by_class = [0u64; 3];
    {
        let _guard = enter_scope(Arc::clone(&scope));
        let burst: Vec<Priority> = std::iter::repeat(Priority::Batch)
            .take(10)
            .chain(std::iter::repeat(Priority::Interactive).take(3))
            .collect();
        for class in burst {
            match engine.submit(q2_request(class)) {
                Ok(handle) => {
                    admitted_by_class[class.index()] += 1;
                    admitted.push(handle);
                }
                Err(Error::Shed { class: shed_class, queued, .. }) => {
                    let shed_class = shed_class.expect("engine sheds carry the class");
                    assert_eq!(shed_class, class, "shed reports the submitting class");
                    assert!(queued.is_some(), "admission sheds report queue depth");
                    shed_by_class[class.index()] += 1;
                }
                Err(other) => panic!("overload must shed, not fail: {other}"),
            }
        }
    }

    assert!(shed_by_class[Priority::Batch.index()] > 0, "10-burst must overflow batch quota 3");
    assert_eq!(
        shed_by_class[Priority::Interactive.index()],
        0,
        "batch flood must not shed interactive requests"
    );
    assert_eq!(
        admitted_by_class[Priority::Interactive.index()],
        3,
        "every interactive request fits inside its quota"
    );

    let snap = scope.snapshot();
    for class in Priority::ALL {
        assert_eq!(
            snap.counter(&names::serve_shed_class(&class)),
            shed_by_class[class.index()],
            "serve.shed.{class} must match observed Shed errors"
        );
        assert_eq!(
            snap.counter(&names::serve_admitted_class(&class)),
            admitted_by_class[class.index()],
            "serve.admitted.{class} must match observed admissions"
        );
    }
    assert_eq!(
        snap.counter(names::SERVE_SHED),
        shed_by_class.iter().sum::<u64>(),
        "per-class shed counts must sum to serve.shed"
    );
    assert_eq!(
        snap.counter(names::SERVE_ADMITTED),
        admitted_by_class.iter().sum::<u64>(),
        "per-class admit counts must sum to serve.admitted"
    );

    // Every admitted request is served to completion, and its report
    // carries the scheduler's decision for that request.
    for handle in admitted {
        let rec = handle.wait().expect("admitted requests are served");
        let class = rec.report.class.expect("engine solves stamp the class");
        assert!(
            class == Priority::Batch || class == Priority::Interactive,
            "only batch/interactive were submitted"
        );
        assert!(rec.report.queue_wait_seconds >= 0.0);
    }
}
