//! Frontier-correctness suite: synthetic two-objective problems with
//! closed-form Pareto fronts, solved end-to-end through `Udao::recommend`
//! and through the concurrent `ServingEngine`.
//!
//! Each problem lives on two knobs `(c, t) ∈ [0,1]²`: `t` trades the two
//! objectives off against each other and `c` strictly worsens both (scaled
//! by 0.37, incommensurate with the exact solver's lattice steps so no two
//! lattice points tie in a minimized objective), making the true Pareto
//! set exactly `{c = 0}` with a closed-form front:
//!
//! * **linear**  — `f1 = t + 0.37c`,   `f2 = (1−t) + 0.37c`    → `f1 + f2 = 1`,    HV(0,0 → 1,1) = 1/2
//! * **convex**  — `f1 = t² + 0.37c`,  `f2 = (1−t)² + 0.37c`   → `√f1 + √f2 = 1`,  HV = 5/6
//! * **concave** — `f1 = t + 0.37c`,   `f2 = √(1−t²) + 0.37c`  → `f1² + f2² = 1`,  HV = 1 − π/4
//!
//! PF-S must recover the front *exactly* (identity residual at float
//! precision) on the 1-D restriction, and must never cross below it on the
//! full 2-D space; PF-AS and PF-AP must cover the truth hypervolume to
//! within 2% of the unit box. The engine-concurrent run must reproduce the
//! serial frontiers bitwise.

use std::sync::Arc;
use udao::{Objective, Request, ServingEngine, ServingOptions, Udao};
use udao_core::mogd::MogdConfig;
use udao_core::objective::FnModel;
use udao_core::pareto::hypervolume;
use udao_core::pf::{PfOptions, PfVariant};
use udao_core::space::{Configuration, ParamSpace, ParamSpec, ParamValue};
use udao_core::ObjectiveModel;
use udao_sparksim::{BatchConf, ClusterSpec, StreamConf};

/// Test-only objective catalog over the synthetic `(c, t)` space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TruthObjective {
    LinearF1,
    LinearF2,
    ConvexF1,
    ConvexF2,
    CircleF1,
    CircleF2,
}

fn eval(o: TruthObjective, x: &[f64]) -> f64 {
    // 0.37 keeps the cost penalty incommensurate with lattice steps: a
    // commensurate penalty (e.g. `+ c`) lets an off-front lattice point tie
    // a front point in the minimized objective, and CO-solver tie-breaking
    // may then return the off-front one.
    let (c, t) = (0.37 * x[0], x[1]);
    match o {
        TruthObjective::LinearF1 => t + c,
        TruthObjective::LinearF2 => (1.0 - t) + c,
        TruthObjective::ConvexF1 => t * t + c,
        TruthObjective::ConvexF2 => (1.0 - t) * (1.0 - t) + c,
        TruthObjective::CircleF1 => t + c,
        TruthObjective::CircleF2 => (1.0 - t * t).max(0.0).sqrt() + c,
    }
}

/// 1-D restriction of the catalog to the Pareto set `{c = 0}`: the knob
/// space maps 1:1 onto the closed-form front, so *every* lattice point is
/// Pareto-optimal and PF-S must recover the front exactly (the 2-D
/// middle-point probe has no such guarantee; see
/// [`pf_s_frontier_never_crosses_below_the_true_front`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Truth1d {
    LinearF1,
    LinearF2,
    ConvexF1,
    ConvexF2,
    CircleF1,
    CircleF2,
}

impl Truth1d {
    fn full(self) -> TruthObjective {
        match self {
            Truth1d::LinearF1 => TruthObjective::LinearF1,
            Truth1d::LinearF2 => TruthObjective::LinearF2,
            Truth1d::ConvexF1 => TruthObjective::ConvexF1,
            Truth1d::ConvexF2 => TruthObjective::ConvexF2,
            Truth1d::CircleF1 => TruthObjective::CircleF1,
            Truth1d::CircleF2 => TruthObjective::CircleF2,
        }
    }
}

impl Objective for Truth1d {
    fn name(&self) -> &'static str {
        match self {
            Truth1d::LinearF1 => "truth1d_linear_f1",
            Truth1d::LinearF2 => "truth1d_linear_f2",
            Truth1d::ConvexF1 => "truth1d_convex_f1",
            Truth1d::ConvexF2 => "truth1d_convex_f2",
            Truth1d::CircleF1 => "truth1d_circle_f1",
            Truth1d::CircleF2 => "truth1d_circle_f2",
        }
    }

    fn analytic_model(&self) -> Option<Arc<dyn ObjectiveModel>> {
        let me = self.full();
        Some(Arc::new(FnModel::new(1, move |x: &[f64]| eval(me, &[0.0, x[0]]))))
    }

    fn heuristic_model(&self) -> Arc<dyn ObjectiveModel> {
        self.analytic_model().expect("truth objectives are always analytic")
    }

    fn space() -> ParamSpace {
        ParamSpace::new(vec![ParamSpec::continuous("t", 0.0, 1.0)]).expect("valid synthetic space")
    }

    fn default_configuration() -> Configuration {
        Configuration::new(vec![ParamValue::Float(0.5)])
    }

    fn typed_confs(_configuration: &Configuration) -> (Option<BatchConf>, Option<StreamConf>) {
        (None, None)
    }
}

impl Objective for TruthObjective {
    fn name(&self) -> &'static str {
        match self {
            TruthObjective::LinearF1 => "truth_linear_f1",
            TruthObjective::LinearF2 => "truth_linear_f2",
            TruthObjective::ConvexF1 => "truth_convex_f1",
            TruthObjective::ConvexF2 => "truth_convex_f2",
            TruthObjective::CircleF1 => "truth_circle_f1",
            TruthObjective::CircleF2 => "truth_circle_f2",
        }
    }

    fn analytic_model(&self) -> Option<Arc<dyn ObjectiveModel>> {
        let me = *self;
        Some(Arc::new(FnModel::new(2, move |x: &[f64]| eval(me, x))))
    }

    fn heuristic_model(&self) -> Arc<dyn ObjectiveModel> {
        self.analytic_model().expect("truth objectives are always analytic")
    }

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamSpec::continuous("c", 0.0, 1.0),
            ParamSpec::continuous("t", 0.0, 1.0),
        ])
        .expect("valid synthetic space")
    }

    fn default_configuration() -> Configuration {
        Configuration::new(vec![ParamValue::Float(0.5), ParamValue::Float(0.5)])
    }

    fn typed_confs(_configuration: &Configuration) -> (Option<BatchConf>, Option<StreamConf>) {
        (None, None)
    }
}

struct TruthProblem {
    name: &'static str,
    objectives: [TruthObjective; 2],
    /// The same objectives restricted to the Pareto set (1-D, `c = 0`).
    objectives_1d: [Truth1d; 2],
    /// Closed-form dominated hypervolume in `[0,1]²` (utopia → nadir).
    truth_hv: f64,
    /// Residual of the front's closed-form identity at `(f1, f2)`; zero on
    /// the true front, strictly positive above it, never negative for any
    /// attainable point.
    identity: fn(f64, f64) -> f64,
}

fn problems() -> Vec<TruthProblem> {
    vec![
        TruthProblem {
            name: "linear",
            objectives: [TruthObjective::LinearF1, TruthObjective::LinearF2],
            objectives_1d: [Truth1d::LinearF1, Truth1d::LinearF2],
            truth_hv: 0.5,
            identity: |f1, f2| f1 + f2 - 1.0,
        },
        TruthProblem {
            name: "convex",
            objectives: [TruthObjective::ConvexF1, TruthObjective::ConvexF2],
            objectives_1d: [Truth1d::ConvexF1, Truth1d::ConvexF2],
            truth_hv: 5.0 / 6.0,
            identity: |f1, f2| f1.max(0.0).sqrt() + f2.max(0.0).sqrt() - 1.0,
        },
        TruthProblem {
            name: "concave",
            objectives: [TruthObjective::CircleF1, TruthObjective::CircleF2],
            objectives_1d: [Truth1d::CircleF1, Truth1d::CircleF2],
            truth_hv: 1.0 - std::f64::consts::FRAC_PI_4,
            identity: |f1, f2| f1 * f1 + f2 * f2 - 1.0,
        },
    ]
}

fn truth_udao(variant: PfVariant) -> Udao {
    Udao::builder(ClusterSpec::paper_cluster())
        .pf(
            variant,
            PfOptions {
                mogd: MogdConfig { multistarts: 6, max_iters: 150, ..Default::default() },
                max_probes: 512,
                // 33 levels → a dyadic lattice (`j/32`). For a *linear*
                // front the middle of every uncertainty rectangle sits
                // exactly on the front (the average of two points on a line
                // stays on the line), so the probe's feasible set
                // degenerates to a single dyadic point — the lattice must
                // contain it or every probe comes back empty and PF-S
                // stalls at the two anchors.
                exact_resolution: 33,
                ..Default::default()
            },
        )
        .build()
        .expect("truth options are valid")
}

fn truth_request(p: &TruthProblem, points: usize) -> Request<TruthObjective> {
    Request::new(format!("truth-{}", p.name))
        .objective(p.objectives[0])
        .objective(p.objectives[1])
        .points(points)
}

fn frontier_hv(frontier: &[udao_core::pareto::ParetoPoint]) -> f64 {
    let fs: Vec<Vec<f64>> = frontier.iter().map(|p| p.f.clone()).collect();
    hypervolume(&fs, &[0.0, 0.0], &[1.0, 1.0])
}

/// PF-S on the exact lattice recovers closed-form fronts exactly when the
/// knob space maps 1:1 onto the front: every frontier point must satisfy
/// the front identity at float precision.
#[test]
fn pf_s_recovers_closed_form_fronts_exactly() {
    let udao = truth_udao(PfVariant::Sequential);
    for p in problems() {
        let req = Request::new(format!("truth1d-{}", p.name))
            .objective(p.objectives_1d[0])
            .objective(p.objectives_1d[1])
            .points(16);
        let rec = udao.recommend(&req).expect("PF-S solves");
        assert!(
            rec.frontier.len() >= 5,
            "{}: PF-S frontier too small ({})",
            p.name,
            rec.frontier.len()
        );
        for point in &rec.frontier {
            let residual = (p.identity)(point.f[0], point.f[1]);
            assert!(
                residual.abs() < 1e-9,
                "{}: point {:?} off the closed-form front (residual {residual:e})",
                p.name,
                point.f
            );
        }
    }
}

/// PF-S on the full 2-D space, where the cost knob makes most of the space
/// dominated. The middle-point probe (Eq. 2) constrains `F ∈ [lo, middle]`
/// of the active rectangle — lower bounds included — so when an objective
/// window is narrower than one lattice step it may contain no `c = 0`
/// lattice point, and the probe legitimately returns a cell-constrained
/// optimum slightly off the global front (its dominator is never probed,
/// so the final Pareto filter keeps it). What PF-S *must* guarantee:
/// the frontier never crosses below the true front (the identity residual
/// of every attainable point is non-negative), the exact `c = 0` points
/// anchor the frontier, and stragglers stay near the front.
#[test]
fn pf_s_frontier_never_crosses_below_the_true_front() {
    let udao = truth_udao(PfVariant::Sequential);
    for p in problems() {
        let rec = udao.recommend(&truth_request(&p, 16)).expect("PF-S solves");
        let mut exact = 0usize;
        for point in &rec.frontier {
            let residual = (p.identity)(point.f[0], point.f[1]);
            assert!(
                residual > -1e-9,
                "{}: point {:?} below the attainable front (residual {residual:e})",
                p.name,
                point.f
            );
            assert!(
                residual < 0.2,
                "{}: point {:?} (x = {:?}) far off the front (residual {residual:.4})",
                p.name,
                point.f,
                point.x
            );
            if point.x[0] == 0.0 {
                assert!(residual.abs() < 1e-9, "{}: on-set point must be exact", p.name);
                exact += 1;
            }
        }
        assert!(
            exact >= 5,
            "{}: only {exact} of {} frontier points sit exactly on the front",
            p.name,
            rec.frontier.len()
        );
    }
}

/// PF-AS and PF-AP: dominated hypervolume within 2% of the closed-form
/// optimum. The front is attainable-but-not-exceedable, so the measured
/// HV must also never exceed the truth.
#[test]
fn pf_as_and_pf_ap_reach_truth_hypervolume() {
    for variant in [PfVariant::ApproxSequential, PfVariant::ApproxParallel] {
        let udao = truth_udao(variant);
        for p in problems() {
            let rec = udao.recommend(&truth_request(&p, 80)).expect("PF solves");
            let hv = frontier_hv(&rec.frontier);
            assert!(
                hv >= p.truth_hv - 0.02,
                "{} under {variant:?}: hv {hv:.4} more than 2% below truth {:.4} \
                 ({} frontier points)",
                p.name,
                p.truth_hv,
                rec.frontier.len()
            );
            assert!(
                hv <= p.truth_hv + 1e-9,
                "{} under {variant:?}: hv {hv:.6} exceeds the attainable truth {:.6}",
                p.name,
                p.truth_hv
            );
        }
    }
}

/// The engine-concurrent run must reproduce serial frontiers bitwise: same
/// seeded solvers, per-point-independent batching, no cross-request state.
#[test]
fn engine_concurrent_frontiers_match_serial_bitwise() {
    let udao = Arc::new(truth_udao(PfVariant::ApproxSequential));
    let serial: Vec<_> = problems()
        .iter()
        .map(|p| udao.recommend(&truth_request(p, 48)).expect("serial solve"))
        .collect();
    let engine: ServingEngine<TruthObjective> = ServingEngine::start_with(
        Arc::clone(&udao),
        ServingOptions::default().with_workers(3),
    );
    let handles: Vec<_> = problems()
        .iter()
        .map(|p| engine.submit(truth_request(p, 48)).expect("admitted"))
        .collect();
    for ((handle, baseline), p) in handles.into_iter().zip(&serial).zip(problems()) {
        let rec = handle.wait().expect("engine solve");
        assert_eq!(
            rec.frontier.len(),
            baseline.frontier.len(),
            "{}: engine frontier size differs from serial",
            p.name
        );
        for (a, b) in rec.frontier.iter().zip(&baseline.frontier) {
            for (va, vb) in a.f.iter().zip(&b.f) {
                assert_eq!(va.to_bits(), vb.to_bits(), "{}: objective bits differ", p.name);
            }
            for (va, vb) in a.x.iter().zip(&b.x) {
                assert_eq!(va.to_bits(), vb.to_bits(), "{}: knob bits differ", p.name);
            }
        }
        for (va, vb) in rec.x.iter().zip(&baseline.x) {
            assert_eq!(va.to_bits(), vb.to_bits(), "{}: recommendation bits differ", p.name);
        }
        // Hypervolume still within tolerance under concurrency.
        let hv = frontier_hv(&rec.frontier);
        assert!(hv >= p.truth_hv - 0.025, "{}: concurrent hv {hv:.4}", p.name);
    }
}
