//! Telemetry integration tests: a served request must come back with a
//! `SolveReport` that reflects real optimizer work, and ladder descents
//! must show up in the fallback counters.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use udao::{
    BatchRequest, FallbackStage, ModelFamily, ModelProvider, ResilienceOptions, Udao,
};
use udao_core::mogd::MogdConfig;
use udao_core::pf::{PfOptions, PfVariant};
use udao_core::{ObjectiveModel, Result};
use udao_model::server::ModelServer;
use udao_model::ModelKey;
use udao_sparksim::objectives::BatchObjective;
use udao_sparksim::{batch_workloads, ClusterSpec};

fn quick_builder() -> udao::UdaoBuilder {
    Udao::builder(ClusterSpec::paper_cluster()).pf(
        PfVariant::ApproxSequential,
        PfOptions {
            mogd: MogdConfig { multistarts: 4, max_iters: 60, alpha: 1.0, ..Default::default() },
            ..Default::default()
        },
    )
}

#[test]
fn solve_report_counts_real_optimizer_work() {
    let udao = quick_builder().build().expect("valid options");
    let workloads = batch_workloads();
    let q2 = workloads.iter().find(|w| w.id == "q2-v0").unwrap();
    udao.train_batch(q2, 40, ModelFamily::Gp, &[BatchObjective::Latency]);
    let rec = udao
        .recommend_batch(
            &BatchRequest::new("q2-v0")
                .objective(BatchObjective::Latency)
                .objective(BatchObjective::CostCores)
                .points(8),
        )
        .unwrap();

    let report = &rec.report;
    assert_eq!(report.workload_id, "q2-v0");
    assert!(report.mogd_iterations > 0, "MOGD did not iterate? {report:?}");
    assert!(report.mogd_restarts > 0);
    assert!(report.pf_probes > 0, "PF spent no probes? {report:?}");
    assert!(report.model_inferences > 0, "no model inference recorded");
    assert!(report.model_lookups > 0, "no model-server lookup recorded");
    assert!(report.total_seconds > 0.0);

    // Stage wall-clock comes from the span hierarchy of the solve.
    let stage = |path: &str| report.stages.iter().find(|s| s.path == path);
    let root = stage("recommend").expect("root span missing");
    let moo = stage("recommend/moo").expect("moo span missing");
    assert!(stage("recommend/models").is_some());
    assert!(stage("recommend/snap").is_some());
    assert!(root.seconds > 0.0);
    assert!(moo.seconds > 0.0);

    // JSON export round-trips through the parser with the headline fields.
    let parsed: serde_json::Value =
        serde_json::from_str(&report.to_value().to_string()).expect("valid JSON");
    assert_eq!(
        parsed.get("workload").and_then(serde_json::Value::as_str),
        Some("q2-v0")
    );
    assert!(parsed.get("mogd_iterations").and_then(serde_json::Value::as_u64) > Some(0));
    assert!(parsed.get("stages").and_then(serde_json::Value::as_array).is_some());
}

/// Routes lookups to the in-process server but makes the first prediction
/// of the request panic — enough to sink the primary PF rung exactly once.
struct PanicOnceProvider {
    server: Arc<ModelServer>,
    fired: Arc<AtomicBool>,
}

struct PanicOnceModel {
    inner: Arc<dyn ObjectiveModel>,
    fired: Arc<AtomicBool>,
}

impl ObjectiveModel for PanicOnceModel {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn predict(&self, x: &[f64]) -> f64 {
        if !self.fired.swap(true, Ordering::SeqCst) {
            panic!("injected: first prediction of the request dies");
        }
        self.inner.predict(x)
    }
    fn predict_std(&self, x: &[f64]) -> f64 {
        self.inner.predict_std(x)
    }
}

impl ModelProvider for PanicOnceProvider {
    fn fetch(&self, key: &ModelKey) -> Result<Option<Arc<dyn ObjectiveModel>>> {
        Ok(self.server.get(key).map(|m| {
            Arc::new(PanicOnceModel { inner: m, fired: Arc::clone(&self.fired) })
                as Arc<dyn ObjectiveModel>
        }))
    }
}

#[test]
fn ladder_descents_show_up_in_the_report() {
    let builder = quick_builder();
    let fired = Arc::new(AtomicBool::new(false));
    let provider = PanicOnceProvider {
        server: builder.shared_model_server(),
        fired: Arc::clone(&fired),
    };
    let udao = builder
        .model_provider(Arc::new(provider))
        .resilience(ResilienceOptions::default())
        .build()
        .expect("valid options");
    let workloads = batch_workloads();
    let q1 = workloads.iter().find(|w| w.id == "q1-v0").unwrap();
    udao.train_batch(q1, 40, ModelFamily::Gp, &[BatchObjective::Latency]);

    let rec = udao
        .recommend_batch(
            &BatchRequest::new("q1-v0")
                .objective(BatchObjective::Latency)
                .objective(BatchObjective::CostCores)
                .weights(vec![0.9, 0.1])
                .points(6),
        )
        .expect("one panic must be absorbed by the ladder");

    assert!(fired.load(Ordering::SeqCst), "the injected panic never fired");
    assert!(rec.degraded);
    assert!(rec.stage > FallbackStage::Primary, "stage: {}", rec.stage);
    let report = &rec.report;
    assert!(
        report.fallback_transitions >= 1,
        "no ladder transition recorded: {report:?}"
    );
    // The rungs actually entered leave per-stage counters behind.
    assert!(report.metrics.counter("fallback.stage.primary") >= 1);
    let below_primary = report.metrics.counter("fallback.stage.single-objective-fallback")
        + report.metrics.counter("fallback.stage.pf-as-fallback")
        + report.metrics.counter("fallback.stage.default-configuration");
    assert!(below_primary >= 1, "no fallback rung counter: {report:?}");
}
