//! Offline vendored shim of the subset of the `criterion` 0.5 API used by
//! the workspace benches: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs each benchmark a
//! small fixed number of times and reports the best observed wall-clock
//! iteration, which keeps `cargo bench` functional (relative comparisons,
//! smoke-testing the hot paths) without any external dependencies.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Iterations measured per benchmark (min over these is reported).
const MEASURE_ROUNDS: usize = 5;

/// Prevent the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    best: Duration,
}

impl Bencher {
    /// Time `routine`, keeping the fastest of a few rounds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..MEASURE_ROUNDS {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            if elapsed < self.best {
                self.best = elapsed;
            }
        }
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        best: Duration::MAX,
    };
    f(&mut b);
    let mut line = String::new();
    let _ = write!(line, "bench {label:<40}");
    if b.best == Duration::MAX {
        let _ = write!(line, " (no measurement)");
    } else {
        let _ = write!(line, " {:>12.3?}/iter", b.best);
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's round count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.text), f);
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.text), |b| f(b, input));
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_ids_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        let mut hits = 0usize;
        g.bench_function("plain", |b| b.iter(|| hits += 1));
        assert!(hits >= MEASURE_ROUNDS);
        g.bench_with_input(BenchmarkId::from_parameter(3), &3usize, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        g.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        g.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(1 + 1)));
    }
}
