//! Offline vendored shim of the subset of the `rand` 0.8 API used in this
//! workspace: `StdRng` (xoshiro256++), `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal, dependency-free implementations of the external crates
//! it relies on. Deterministic by construction: no OS entropy sources.

use std::ops::{Range, RangeInclusive};

/// Low-level RNG interface: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample a value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling within a (half-open or inclusive) range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "gen_range called with an empty range");
                // Modulo reduction: negligible bias for the spans used here.
                (lo_w + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        assert!(lo <= hi, "gen_range called with an empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: xoshiro256++ (not the `rand` crate's ChaCha12 —
    /// stream values differ, but all workspace uses are seed-deterministic
    /// simulations that only need a high-quality reproducible stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random choice over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_vary() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_integer_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(-2i64..=2);
            seen[(v + 2) as usize] = true;
            assert!((-2..=2).contains(&v));
        }
        assert!(seen.iter().all(|s| *s), "inclusive endpoints reachable");
        for _ in 0..200 {
            let v = rng.gen_range(0usize..3);
            assert!(v < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 2000.0 - 0.25).abs() < 0.05);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle is virtually never identity");
    }
}
