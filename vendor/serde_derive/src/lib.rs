//! Offline vendored shim of `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! for non-generic structs with named fields and enums (unit, tuple, and
//! struct variants), with serde's externally-tagged enum representation.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the item is
//! parsed directly from the `proc_macro::TokenStream`, and the generated
//! impl is assembled as source text and re-parsed. Only the shapes actually
//! used in this workspace are supported; anything else fails loudly at
//! compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skip leading `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive shim: malformed attribute near {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type,` named fields from a brace-group token stream,
/// returning the field names. Types are irrelevant to the generated code.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut toks = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive shim: expected field name, got {other}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after `{name}`, got {other:?}"),
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        for tok in toks.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(name);
    }
    fields
}

/// Count the top-level comma-separated types in a tuple-variant paren group.
fn tuple_arity(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut saw_any = false;
    let mut trailing_comma = false;
    for tok in body {
        saw_any = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if !saw_any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            _ => panic!("serde_derive shim: struct `{name}` must have named fields"),
        },
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("serde_derive shim: malformed enum `{name}`"),
            };
            let mut vt = body.into_iter().peekable();
            let mut variants = Vec::new();
            loop {
                skip_attrs_and_vis(&mut vt);
                let vname = match vt.next() {
                    None => break,
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    Some(other) => panic!("serde_derive shim: expected variant name, got {other}"),
                };
                let kind = match vt.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = tuple_arity(g.stream());
                        vt.next();
                        VariantKind::Tuple(arity)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        vt.next();
                        VariantKind::Struct(fields)
                    }
                    _ => VariantKind::Unit,
                };
                if let Some(TokenTree::Punct(p)) = vt.peek() {
                    if p.as_char() == ',' {
                        vt.next();
                    }
                }
                variants.push(Variant { name: vname, kind });
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    }
}

fn struct_fields_to_value(fields: &[String], accessor: &str) -> String {
    let mut code = String::from("{ let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields {
        code.push_str(&format!(
            "obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value({accessor}{f})));\n"
        ));
    }
    code.push_str("::serde::Value::Object(obj) }");
    code
}

fn struct_fields_from_value(ty_label: &str, fields: &[String], obj_expr: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::field({obj_expr}, \"{f}\", \"{ty_label}\")?)?,\n"
        ));
    }
    inits
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let body = struct_fields_to_value(&fields, "&self.");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let payload = struct_fields_to_value(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive shim: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits = struct_fields_from_value(&name, &fields, "obj");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
                 }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?))"
                            )
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "{{ let items = payload.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                                 if items.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({elems})) }}",
                                elems = elems.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!("\"{vn}\" => {body},\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let inits =
                            struct_fields_from_value(&format!("{name}::{vn}"), fields, "fobj");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let fobj = payload.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {inits} }}) }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown unit variant `{{other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(kv) if kv.len() == 1 => {{\n\
                 let (tag, payload) = &kv[0];\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\"expected variant tag for {name}\")),\n\
                 }}\n}}\n}}"
            )
        }
    };
    code.parse().expect("serde_derive shim: generated Deserialize impl failed to parse")
}
