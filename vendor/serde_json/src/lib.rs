//! Offline vendored shim of the subset of the `serde_json` API used in this
//! workspace: `to_string`, `to_string_pretty`, `from_str`, the `json!`
//! macro, and a `Display`-able [`Value`].
//!
//! Works over the vendored `serde` crate's [`Value`] data model: a real JSON
//! text printer/parser on one side, `Serialize`/`Deserialize` on the other.

pub use serde::{Error, Value};
use serde::{Deserialize, Serialize};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree (used by `json!`).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().write_json(&mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().write_json(&mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Build a [`Value`] from JSON-like syntax. Keys are string literals; values
/// are arbitrary serializable expressions (including nested `json!` calls).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::to_value(&$val)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(kv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            kv.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(kv));
                }
                _ => return Err(Error::custom(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap_or('\u{fffd}');
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v = json!({
            "name": "q1",
            "xs": [1.5, 2.0, -3.25],
            "n": 42usize,
            "flag": true,
            "missing": json!(null),
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        // Float 2.0 prints as "2" and reparses as Int(2); compare via text.
        assert_eq!(to_string(&back).unwrap(), text);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#"{"s": "a\"b\\c\ndé"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\\c\nd\u{e9}");
    }

    #[test]
    fn pretty_print_is_indented_and_reparsable() {
        let v = json!({"a": [1, 2], "b": json!({"c": "x"})});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(to_string(&back).unwrap(), to_string(&v).unwrap());
    }

    #[test]
    fn typed_round_trip_with_floats_is_exact() {
        let xs = vec![0.1, 1.0 / 3.0, 6.02e23, -7.25e-12];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} extra").is_err());
        assert!(from_str::<Value>("[1, 2,, 3]").is_err());
    }
}
