//! Offline vendored shim of the subset of the `serde` API used in this
//! workspace: `#[derive(Serialize, Deserialize)]` on plain structs and enums
//! (no `#[serde(...)]` attributes), consumed by the vendored `serde_json`.
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! self-describing [`Value`] tree: `Serialize::to_value` /
//! `Deserialize::from_value`. `serde_json` renders and parses that tree as
//! JSON text. This is sufficient — and exactly round-trips — for every
//! derived type in the workspace.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data model produced by [`Serialize`] and consumed by
/// [`Deserialize`]. Mirrors the JSON data model; object key order is
/// preserved (insertion order) so dumps are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent, fits i64).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with preserved key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object's key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(kv) => Some(kv),
            _ => None,
        }
    }

    /// Borrow as an array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric view as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.22e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f < 1.85e19 => Some(*f as u64),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|kv| kv.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Render as JSON text into `out`. `indent = Some(width)` pretty-prints,
    /// `None` prints compactly. Non-finite floats print as `null` (JSON has
    /// no NaN/Infinity), matching `serde_json`.
    pub fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
            if let Some(width) = indent {
                out.push('\n');
                for _ in 0..width * depth {
                    out.push(' ');
                }
            }
        }
        fn write_string(out: &mut String, s: &str) {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // Rust's shortest-round-trip formatting keeps dumps exact.
                    out.push_str(&f.to_string())
                } else {
                    out.push_str("null")
                }
            }
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write_json(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(kv) => {
                if kv.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, item)) in kv.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    item.write_json(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Value {
    /// Compact JSON rendering, so `println!("{}", json!({...}))` works.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        f.write_str(&out)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetch a required object field (used by derived `Deserialize` impls).
pub fn field<'a>(obj: &'a [(String, Value)], name: &str, ty: &str) -> Result<&'a Value, Error> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` for {ty}")))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let u = *self as u64;
                match i64::try_from(u) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(u),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(Error::custom(format!("expected tuple of length {want}")));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::from_value(&3.25f64.to_value()), Ok(3.25));
        assert_eq!(usize::from_value(&7usize.to_value()), Ok(7));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(f64, f64)> = vec![(1.0, 2.0), (3.0, 4.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&v.to_value()), Ok(v));
        let arr = [1.0f64, 2.0, 3.0, 4.0];
        assert_eq!(<[f64; 4]>::from_value(&arr.to_value()), Ok(arr));
        let opt: Option<(f64, f64)> = None;
        assert_eq!(Option::<(f64, f64)>::from_value(&opt.to_value()), Ok(None));
    }

    #[test]
    fn numeric_cross_views() {
        // An integral float deserializes into integer types and vice versa.
        assert_eq!(usize::from_value(&Value::Float(4.0)), Ok(4));
        assert_eq!(f64::from_value(&Value::Int(4)), Ok(4.0));
        assert!(usize::from_value(&Value::Float(4.5)).is_err());
    }
}
