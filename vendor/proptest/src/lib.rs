//! Offline vendored shim of the subset of the `proptest` API used in this
//! workspace: the `proptest!`/`prop_assert!`/`prop_assert_eq!` macros,
//! range and `prop::collection::vec` strategies, `any::<bool>()`, and
//! `ProptestConfig::with_cases`.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test name and case index), so failures reproduce exactly. No shrinking:
//! a failing case reports its inputs via the assertion message instead.

/// Strategies for generating values.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform};
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::sample_uniform(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::sample_uniform(rng, *self.start(), *self.end(), true)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Uniform boolean strategy backing `any::<bool>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    /// Types with a canonical strategy, for `any::<T>()`.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for `Self`.
        type Strategy: Strategy<Value = Self>;
        /// Construct the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }

    /// The canonical strategy for `T` (only the types the workspace needs).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Collection strategies, mirroring `proptest::prop::collection`.
pub mod prop {
    /// `vec(elem, size)` strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Inclusive bounds on a generated collection's length.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.end > r.start, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy producing `Vec`s of values from an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.size.lo..=self.size.hi);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// A strategy for `Vec`s with lengths in `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }
    }
}

/// Test-case execution support used by the `proptest!` macro expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-block configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property assertion (carried by `prop_assert!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Deterministic RNG for one case of one named property (FNV-1a over
    /// the test name, mixed with the case index).
    pub fn case_rng(test_name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(case);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        StdRng::seed_from_u64(h)
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::case_rng(stringify!($name), __case);
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )*
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed on case {}/{}: {}",
                            stringify!($name), __case + 1, __config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Assert within a property; fails the case (with formatting) instead of
/// panicking directly so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = &$a;
        let __b = &$b;
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {:?} != {:?}",
            __a,
            __b
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..10.0, n in 2i64..=5, k in 0usize..3) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((2..=5).contains(&n));
            prop_assert!(k < 3);
        }

        #[test]
        fn vecs_respect_size_ranges(
            xs in prop::collection::vec(0.0f64..1.0, 1..40),
            ys in prop::collection::vec(0.0f64..1.0, 3),
            flag in any::<bool>()
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 40);
            prop_assert_eq!(ys.len(), 3);
            prop_assert!(flag || !flag);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn configured_case_count_applies(x in 0.0f64..=1.0) {
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let a: f64 = crate::test_runner::case_rng("t", 3).gen();
        let b: f64 = crate::test_runner::case_rng("t", 3).gen();
        let c: f64 = crate::test_runner::case_rng("t", 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
