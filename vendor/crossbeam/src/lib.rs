//! Offline vendored shim of the subset of the `crossbeam` 0.8 API used in
//! this workspace: `thread::scope` with borrow-friendly scoped spawning.
//!
//! Built on `std::thread::scope` (Rust ≥ 1.63). The outer `scope` returns
//! `Err` with the first child panic payload instead of propagating the
//! panic, mirroring crossbeam's contract.

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The crossbeam closure signature takes the
        /// scope itself as an argument; all workspace call sites ignore it
        /// (`spawn(|_| ...)`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || {
                f(&Scope { inner })
            })
        }
    }

    /// Create a scope for spawning borrowing threads. All spawned threads are
    /// joined before `scope` returns. Returns `Err(payload)` if any child
    /// panicked (first payload wins), `Ok(r)` otherwise.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let sum = std::sync::atomic::AtomicU64::new(0);
        let r = super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    sum.fetch_add(chunk.iter().sum::<u64>(), std::sync::atomic::Ordering::SeqCst)
                });
            }
        });
        assert!(r.is_ok());
        assert_eq!(sum.load(std::sync::atomic::Ordering::SeqCst), 10);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("child down"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = std::sync::atomic::AtomicU64::new(0);
        let r = super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst));
                hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        });
        assert!(r.is_ok());
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 2);
    }
}
