//! Offline vendored shim of the subset of the `parking_lot` 0.12 API used in
//! this workspace: `Mutex` and `RwLock` with non-poisoning, guard-returning
//! `lock()`/`read()`/`write()`.
//!
//! Backed by `std::sync` primitives; a poisoned std lock (a panic while the
//! guard was held) is recovered via `into_inner`, matching parking_lot's
//! no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable after a panicking holder.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
